"""Query layer over cached campaign reports.

``repro-faults query`` filters the ``report`` artifacts of a store by
design, detection threshold and per-fault verdict, without running any
simulation.  Results come back as row dicts (JSON mode) or a rendered
table; the heavy lifting is just index scans plus integrity-verified
blob reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .cache import CampaignStore

#: verdict filters: pipeline categories plus the power-test outcome
CATEGORY_VERDICTS = ("SFI-detected", "SFI-practical", "CFR", "SFR", "SFI-escaped")
POWER_VERDICTS = ("power-detected", "power-missed")
QUERY_VERDICTS = CATEGORY_VERDICTS + POWER_VERDICTS


@dataclass
class CampaignMatch:
    """One cached campaign matching a query, with its matching faults."""

    key: str
    design: str
    command: str
    created_at: float
    report: dict
    faults: list[dict] = field(default_factory=list)

    def summary_row(self) -> dict:
        table2 = self.report.get("table2", {})
        grading = self.report.get("grading") or {}
        return {
            "key": self.key[:12],
            "design": self.design,
            "command": self.command,
            "total_faults": table2.get("total_faults"),
            "sfr_faults": table2.get("sfr_faults"),
            "threshold": grading.get("threshold"),
            "fault_free_uw": grading.get("fault_free_uw"),
            "matched_faults": len(self.faults),
        }


def _fault_rows(report: dict, verdict: str | None) -> list[dict]:
    """The fault rows of one report that satisfy the verdict filter."""
    if verdict is None:
        return list(report.get("faults", []))
    if verdict in CATEGORY_VERDICTS:
        return [f for f in report.get("faults", []) if f.get("category") == verdict]
    detected = verdict == "power-detected"
    grading = report.get("grading") or {}
    return [f for f in grading.get("graded", []) if f.get("detected") is detected]


def query_campaigns(
    store: CampaignStore,
    design: str | None = None,
    threshold: float | None = None,
    verdict: str | None = None,
) -> list[CampaignMatch]:
    """Filter cached campaign reports; corruption degrades to a skip."""
    matches: list[CampaignMatch] = []
    for row in store.artifacts.rows(kind="report", design=design):
        report = store.lookup("report", row.key)
        if report is None:  # corrupted blob, quarantined by lookup
            continue
        grading = report.get("grading")
        if threshold is not None:
            if grading is None or abs(grading.get("threshold", -1.0) - threshold) > 1e-12:
                continue
        faults = _fault_rows(report, verdict)
        if verdict is not None and not faults:
            continue
        matches.append(
            CampaignMatch(
                key=row.key,
                design=row.design,
                command=report.get("command", row.meta.get("command", "?")),
                created_at=row.created_at,
                report=report,
                faults=faults,
            )
        )
    return matches


def render_query(matches: list[CampaignMatch], verdict: str | None = None) -> str:
    """Fixed-width table rendering of a query result."""
    from ..core.report import render_table  # deferred: avoids an import cycle

    if not matches:
        return "no cached campaigns match"
    rows = []
    for m in matches:
        r = m.summary_row()
        rows.append(
            [
                r["key"],
                r["design"],
                r["command"],
                str(r["total_faults"]),
                str(r["sfr_faults"]),
                "-" if r["threshold"] is None else f"{100 * r['threshold']:.0f}%",
                str(r["matched_faults"]) if verdict else "-",
            ]
        )
    table = render_table(
        ["Key", "Design", "Command", "Faults", "SFR", "Threshold", "Matched"],
        rows,
        title="Cached campaigns",
    )
    if verdict:
        lines = [table, "", f"faults matching verdict {verdict!r}:"]
        for m in matches:
            for f in m.faults[:20]:
                site = f.get("site") or f.get("fault")
                extra = ""
                if "pct" in f:
                    extra = f"  {f['power_uw']:.1f} uW ({f['pct']:+.2f}%)"
                lines.append(f"  {m.design}: {site}{extra}")
            if len(m.faults) > 20:
                lines.append(f"  … {len(m.faults) - 20} more in {m.design}")
        return "\n".join(lines)
    return table


def query_json(matches: list[CampaignMatch]) -> list[dict]:
    """JSON-mode query payload: summaries plus matched fault rows."""
    return [
        dict(m.summary_row(), key=m.key, faults=m.faults, created_at=m.created_at)
        for m in matches
    ]
