"""Event-driven reference simulator (scalar, three-valued).

An independent second implementation of the simulation semantics: one
pattern at a time, plain Python ints (0, 1, -1 for X), a classic
zero-delay event loop (changed net -> re-evaluate fanout gates until the
wavefront dies out).  It exists to cross-validate the vectorised compiled
simulator -- the property tests in ``tests/test_eventsim.py`` drive both
engines with the same stimulus over randomly generated netlists and
require bit-identical traces, and the integrity layer's differential
audit (:func:`crosscheck_compiled`) replays pattern 0 of a live campaign
stimulus through both engines via :class:`PatternZeroShim`.

It is 10-100x slower per pattern and never computes pipeline results.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..netlist.gates import GateType, is_constant, is_sequential
from ..netlist.netlist import Netlist
from .faults import FaultSite

X = -1


def _eval3(gtype: GateType, vals: list[int]) -> int:
    """Three-valued gate evaluation on scalars."""
    if gtype in (GateType.AND, GateType.NAND):
        if 0 in vals:
            out = 0
        elif X in vals:
            out = X
        else:
            out = 1
        return out if gtype is GateType.AND else (X if out == X else 1 - out)
    if gtype in (GateType.OR, GateType.NOR):
        if 1 in vals:
            out = 1
        elif X in vals:
            out = X
        else:
            out = 0
        return out if gtype is GateType.OR else (X if out == X else 1 - out)
    if gtype in (GateType.XOR, GateType.XNOR):
        if X in vals:
            return X
        out = sum(vals) % 2
        return out if gtype is GateType.XOR else 1 - out
    if gtype is GateType.NOT:
        return X if vals[0] == X else 1 - vals[0]
    if gtype is GateType.BUF:
        return vals[0]
    if gtype is GateType.MUX2:
        s, a, b = vals
        if s == 0:
            return a
        if s == 1:
            return b
        return a if (a == b and a != X) else X
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise AssertionError(f"not combinational: {gtype}")


class EventSimulator:
    """Scalar event-driven simulator mirroring CycleSimulator's semantics."""

    def __init__(self, netlist: Netlist, faults: list[FaultSite] | None = None):
        netlist.validate()
        self.netlist = netlist
        self.values: list[int] = [X] * netlist.num_nets
        self._fanout = netlist.fanout_map()
        self._stem: dict[int, int] = {}
        self._branch: dict[tuple[int, int], int] = {}
        for f in faults or []:
            if f.is_stem:
                self._stem[f.net] = f.value
            else:
                assert f.gate_index is not None
                self._branch[(f.gate_index, f.pin)] = f.value
        for g in netlist.gates:
            if is_constant(g.gtype):
                self._set(g.output, _eval3(g.gtype, []))
        for net, val in self._stem.items():
            self.values[net] = val
        self.toggles = [0] * netlist.num_nets
        self._prev: list[int] | None = None

    # ------------------------------------------------------------- internal
    def _set(self, net: int, value: int) -> None:
        if net in self._stem:
            value = self._stem[net]
        self.values[net] = value

    def _gate_inputs(self, gate) -> list[int]:
        vals = []
        for pin, net in enumerate(gate.inputs):
            forced = self._branch.get((gate.index, pin))
            vals.append(self.values[net] if forced is None else forced)
        return vals

    # ---------------------------------------------------------------- drive
    def drive_const(self, net: int, value: int) -> None:
        self._set(net, value)

    # ----------------------------------------------------------------- eval
    def settle(self) -> None:
        """Propagate events until the combinational network is stable."""
        queue = deque(g for g in self.netlist.gates
                      if not is_sequential(g.gtype) and not is_constant(g.gtype))
        queued = {g.index for g in queue}
        guard = 0
        limit = 4 * (len(self.netlist.gates) + 1) ** 2
        while queue:
            guard += 1
            if guard > limit:
                raise RuntimeError("event simulation did not stabilise")
            gate = queue.popleft()
            queued.discard(gate.index)
            new = _eval3(gate.gtype, self._gate_inputs(gate))
            if gate.output in self._stem:
                new = self._stem[gate.output]
            if new == self.values[gate.output]:
                continue
            self.values[gate.output] = new
            for reader_idx, _pin in self._fanout[gate.output]:
                reader = self.netlist.gates[reader_idx]
                if is_sequential(reader.gtype) or is_constant(reader.gtype):
                    continue
                if reader.index not in queued:
                    queue.append(reader)
                    queued.add(reader.index)
        # Toggle accounting against the previous settled frame.
        if self._prev is not None:
            for net in range(len(self.values)):
                a, b = self._prev[net], self.values[net]
                if a != X and b != X and a != b:
                    self.toggles[net] += 1
        self._prev = list(self.values)

    def latch(self) -> None:
        """Clock edge for every flip-flop."""
        updates: list[tuple[int, int]] = []
        for g in self.netlist.gates:
            if g.gtype is GateType.DFF:
                updates.append((g.output, self._gate_inputs(g)[0]))
            elif g.gtype is GateType.DFFE:
                en, d = self._gate_inputs(g)
                q = self.values[g.output]
                if en == 1:
                    updates.append((g.output, d))
                elif en == X:
                    updates.append((g.output, d if (d == q and d != X) else X))
        for net, val in updates:
            self._set(net, val)

    # ------------------------------------------------------------- observe
    def sample(self, net: int) -> int:
        return self.values[net]

    def sample_bus(self, nets: list[int]) -> int:
        out = 0
        for i, net in enumerate(nets):
            v = self.values[net]
            if v == X:
                return X
            out |= v << i
        return out


class PatternZeroShim:
    """Drive adapter replaying pattern 0 of any packed stimulus.

    Presents the :class:`~repro.logic.simulator.CycleSimulator` drive API
    (``drive_words`` / ``drive`` / ``drive_const`` / ``drive_bus``) on
    top of an :class:`EventSimulator`, extracting bit 0 of each plane --
    so an arbitrary campaign :class:`~repro.logic.faultsim.Stimulus`
    drives the scalar reference engine unmodified.
    """

    def __init__(self, esim: EventSimulator, n_patterns: int):
        self._esim = esim
        # Stimuli validate the simulator's pattern count before driving.
        self.n_patterns = n_patterns

    def drive_words(self, net: int, zero, one) -> None:
        z = int(np.asarray(zero).reshape(-1)[0]) & 1
        o = int(np.asarray(one).reshape(-1)[0]) & 1
        self._esim.drive_const(net, 1 if o else (0 if z else X))

    def drive(self, net: int, bits) -> None:
        self._esim.drive_const(net, int(np.asarray(bits).reshape(-1)[0]) & 1)

    def drive_const(self, net: int, value: int) -> None:
        self._esim.drive_const(net, value)

    def drive_bus(self, nets: list[int], words) -> None:
        value = int(np.asarray(words).reshape(-1)[0])
        for i, net in enumerate(nets):
            self._esim.drive_const(net, (value >> i) & 1)


def crosscheck_compiled(
    netlist: Netlist,
    stimulus,
    observe: list[int],
    fault: FaultSite | None = None,
) -> int:
    """Replay pattern 0 of ``stimulus`` through both engines and compare.

    Runs the compiled pattern-parallel simulator and the event-driven
    reference side by side for every cycle of the stimulus (with the same
    optional injected fault) and compares the three-valued samples of
    every observed net after each settle.  Returns the first cycle where
    any observed net disagrees, or -1 when the engines are bit-identical
    -- the integrity layer turns a non-negative return into an
    ``IntegrityViolation`` naming the cycle.
    """
    from .simulator import CycleSimulator

    faults = [fault] if fault is not None else None
    csim = CycleSimulator(netlist, stimulus.n_patterns, faults=faults)
    esim = EventSimulator(netlist, faults=faults)
    shim = PatternZeroShim(esim, stimulus.n_patterns)
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(csim, cycle)
        stimulus.apply(shim, cycle)
        csim.settle()
        esim.settle()
        for net in observe:
            if int(csim.sample(net)[0]) != esim.sample(net):
                return cycle
        csim.latch()
        esim.latch()
    return -1
