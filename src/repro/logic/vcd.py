"""VCD (Value Change Dump) waveform export.

Lets any simulation run be inspected in a standard waveform viewer
(GTKWave and friends) -- indispensable when debugging why a controller
fault does or does not disturb the datapath.  Usage::

    trace = VcdTrace(system.netlist, nets=watch_these, pattern=0)
    for cycle in range(n):
        stimulus.apply(sim, cycle)
        sim.settle()
        trace.sample(sim)
        sim.latch()
    open("run.vcd", "w").write(trace.render())

Only one pattern of a pattern-parallel run is dumped (``pattern``), one
sample per cycle, 10 ns nominal clock.
"""

from __future__ import annotations

from ..netlist.netlist import Netlist

_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal ``index``."""
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


class VcdTrace:
    """Collects per-cycle samples of selected nets and renders VCD text."""

    def __init__(
        self,
        netlist: Netlist,
        nets: list[int] | None = None,
        pattern: int = 0,
        timescale_ns: int = 10,
        design_name: str | None = None,
    ):
        self.netlist = netlist
        if nets is None:
            # Default: every net with a meaningful (non-generated) name.
            nets = [
                n
                for n, name in enumerate(netlist.net_names)
                if not name.split("/")[-1].startswith("_n")
            ]
        self.nets = list(nets)
        self.pattern = pattern
        self.timescale_ns = timescale_ns
        self.design_name = design_name or netlist.name
        self._ids = {net: _identifier(i) for i, net in enumerate(self.nets)}
        self._samples: list[dict[int, int]] = []

    def sample(self, sim) -> None:
        """Record the current settled values (call once per cycle)."""
        frame: dict[int, int] = {}
        for net in self.nets:
            frame[net] = int(sim.sample(net)[self.pattern])
        self._samples.append(frame)

    @staticmethod
    def _value_char(v: int) -> str:
        return "x" if v < 0 else str(v)

    def render(self) -> str:
        """Produce the VCD text for everything sampled so far."""
        lines = [
            "$date repro $end",
            "$version repro VcdTrace $end",
            f"$timescale 1ns $end",
            f"$scope module {self.design_name} $end",
        ]
        for net in self.nets:
            name = self.netlist.net_names[net]
            safe = name.replace(" ", "_")
            lines.append(f"$var wire 1 {self._ids[net]} {safe} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        previous: dict[int, int | None] = {net: None for net in self.nets}
        for cycle, frame in enumerate(self._samples):
            changes = [
                f"{self._value_char(v)}{self._ids[net]}"
                for net, v in frame.items()
                if previous[net] != v
            ]
            if changes or cycle == 0:
                lines.append(f"#{cycle * self.timescale_ns}")
                if cycle == 0:
                    lines.append("$dumpvars")
                lines.extend(changes)
                if cycle == 0:
                    lines.append("$end")
            for net, v in frame.items():
                previous[net] = v
        lines.append(f"#{len(self._samples) * self.timescale_ns}")
        return "\n".join(lines) + "\n"


def dump_system_run(system, data, n_cycles: int, path: str, nets=None, fault=None) -> str:
    """Convenience: run one computation and write its VCD to ``path``."""
    import numpy as np

    from ..hls.system import NormalModeStimulus
    from .simulator import CycleSimulator

    stim = NormalModeStimulus(system, {k: np.asarray(v) for k, v in data.items()}, n_cycles)
    sim = CycleSimulator(system.netlist, stim.n_patterns,
                         faults=[fault] if fault else None)
    watch = nets
    if watch is None:
        watch = [system.reset_net, system.start_net]
        watch += list(system.control_nets.values())
        watch += list(system.state_nets)
        for bus in system.output_buses.values():
            watch += bus
    trace = VcdTrace(system.netlist, nets=watch)
    for cycle in range(stim.n_cycles):
        stim.apply(sim, cycle)
        sim.settle()
        trace.sample(sim)
        sim.latch()
    text = trace.render()
    with open(path, "w") as f:
        f.write(text)
    return text
