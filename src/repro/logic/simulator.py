"""Pattern-parallel, three-valued, zero-delay cycle simulator.

The simulator compiles a netlist once into level-ordered *groups* of gates
with identical (type, fan-in) so each group evaluates with a handful of
vectorised numpy operations over all patterns at once.  It supports:

* stuck-at fault injection (stem faults force a net, branch faults poison a
  single gate's view of one input pin);
* per-net toggle counting and per-register load-event counting, which feed
  the switched-capacitance power model;
* X (unknown) propagation -- flip-flops power up X, which is how the
  GENTEST-style "potentially detected" verdict arises.

The compile step (levelization + gate grouping + slot maps) lives in an
immutable :class:`CompiledNetlist` shared by every simulator built for the
same netlist: :func:`compile_netlist` memoizes one artifact per ``Netlist``
object, so fault-simulation campaigns that construct thousands of
simulators (one per fault, per batch) pay the compile cost exactly once.
Per-fault differences -- stem forces and branch poisons -- are resolved
against the shared compile at construction time and live entirely in the
simulator instance.

Typical use::

    sim = CycleSimulator(netlist, n_patterns=256, faults=[site])
    for cycle in range(n_cycles):
        sim.drive(net, bits)            # or drive_const / drive_words
        sim.settle()                    # evaluate combinational logic
        z, o = sim.planes(out_net)      # observe
        sim.latch()                     # clock edge
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..netlist.gates import GateType, is_sequential
from ..netlist.netlist import Netlist
from . import values as V
from .faults import FaultSite
from .levelize import levelize

_U64 = np.uint64


@dataclass
class _Group:
    gtype: GateType
    gate_idx: np.ndarray  # (n,)
    outputs: np.ndarray  # (n,)
    inputs: np.ndarray  # (n, arity)
    gid: int = -1  # unique id assigned at compile time
    dffe_rows: np.ndarray | None = None  # DFFE groups: row into load_events


#: per-type identity value used to pad mixed-arity groups: reading a virtual
#: constant net with this value leaves the gate's fold unchanged.
_PAD_IDENTITY = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
    GateType.XOR: 0,
    GateType.XNOR: 0,
}


def _make_groups(
    netlist: Netlist, gate_indices: list[int], v0: int, v1: int
) -> list[_Group]:
    """Bucket gates by type only; pad ragged fan-ins with identity nets.

    ``v0``/``v1`` are the simulator's virtual always-0 / always-1 net rows.
    Folding in an extra constant-1 input leaves AND/NAND unchanged, and a
    constant 0 leaves OR/NOR/XOR/XNOR unchanged, so one group per gate type
    per level suffices regardless of fan-in mix -- fewer, larger groups
    keep the per-cycle numpy call count down.
    """
    buckets: dict[GateType, list[int]] = {}
    for gi in gate_indices:
        buckets.setdefault(netlist.gates[gi].gtype, []).append(gi)
    groups = []
    for gtype, idxs in sorted(buckets.items(), key=lambda kv: kv[0].value):
        gates = [netlist.gates[i] for i in idxs]
        arity = max(len(g.inputs) for g in gates)
        pad = v1 if _PAD_IDENTITY.get(gtype, 0) else v0
        groups.append(
            _Group(
                gtype=gtype,
                gate_idx=np.array(idxs, dtype=np.int64),
                outputs=np.array([g.output for g in gates], dtype=np.int64),
                inputs=np.array(
                    [g.inputs + [pad] * (arity - len(g.inputs)) for g in gates],
                    dtype=np.int64,
                ),
            )
        )
    return groups


@dataclass
class CompiledNetlist:
    """Immutable compile artifact shared by all simulators of one netlist.

    Holds everything that depends only on the structure of the design:
    levelized evaluation groups, sequential groups, constant-net ids, the
    DFFE row index, the gate -> (group, row) slot map used to resolve
    branch-fault poisons, and the net -> producing-level map used to
    re-force stem faults only where they get overwritten.  Instances are
    produced (and memoized) by :func:`compile_netlist`; treat them as
    read-only.
    """

    num_nets: int
    const0: np.ndarray  # net ids tied to 0
    const1: np.ndarray  # net ids tied to 1 (includes the virtual pad nets)
    levels: list[list[_Group]]
    seq_groups: list[_Group]
    dffe_index: dict[int, int]  # DFFE gate index -> load_events row
    gate_to_slot: dict[int, tuple[int, int]]  # gate index -> (gid, row)
    net_level: dict[int, int]  # net id -> comb level writing it (-1 = latch)
    n_rows: int  # num_nets + 2 virtual constant rows for fan-in padding
    stamp: tuple[int, int]  # (num gates, num nets) at compile time

    @property
    def n_dffe(self) -> int:
        return len(self.dffe_index)

    def resolve_branch(self, gate_index: int, pin: int) -> tuple[int, int, int]:
        """Return (group id, row, pin) for a branch-fault injection site."""
        gid, row = self.gate_to_slot[gate_index]
        return gid, row, pin


def _compile(netlist: Netlist) -> CompiledNetlist:
    netlist.validate()
    # Rows [num_nets] and [num_nets + 1] of the simulator's planes are
    # virtual constant nets (always-0 / always-1) used to pad ragged fan-ins.
    v0, v1 = netlist.num_nets, netlist.num_nets + 1
    const0 = [g.output for g in netlist.gates if g.gtype is GateType.CONST0] + [v0]
    const1 = [g.output for g in netlist.gates if g.gtype is GateType.CONST1] + [v1]
    levels = [_make_groups(netlist, lvl, v0, v1) for lvl in levelize(netlist)]
    seq_idx = [g.index for g in netlist.gates if is_sequential(g.gtype)]
    seq_groups = _make_groups(netlist, seq_idx, v0, v1)
    dffe = [g for g in netlist.gates if g.gtype is GateType.DFFE]
    dffe_index = {g.index: row for row, g in enumerate(dffe)}

    gate_to_slot: dict[int, tuple[int, int]] = {}
    net_level: dict[int, int] = {}
    gid = 0
    for lvl, level in enumerate(levels):
        for group in level:
            group.gid = gid
            gid += 1
            for row, g in enumerate(group.gate_idx):
                gate_to_slot[int(g)] = (group.gid, row)
            for out in group.outputs:
                net_level[int(out)] = lvl
    for group in seq_groups:
        group.gid = gid
        gid += 1
        for row, g in enumerate(group.gate_idx):
            gate_to_slot[int(g)] = (group.gid, row)
        for out in group.outputs:
            net_level[int(out)] = -1
        if group.gtype is GateType.DFFE:
            group.dffe_rows = np.array(
                [dffe_index[int(g)] for g in group.gate_idx], dtype=np.int64
            )
    return CompiledNetlist(
        num_nets=netlist.num_nets,
        const0=np.array(const0, dtype=np.int64),
        const1=np.array(const1, dtype=np.int64),
        levels=levels,
        seq_groups=seq_groups,
        dffe_index=dffe_index,
        gate_to_slot=gate_to_slot,
        net_level=net_level,
        n_rows=netlist.num_nets + 2,
        stamp=(len(netlist.gates), netlist.num_nets),
    )


# One compile artifact per live Netlist object.  Keyed by id() (Netlist is
# an eq-comparing dataclass, hence unhashable); a weakref finalizer evicts
# the entry when the netlist is garbage-collected, so the cache never keeps
# a dead design alive and id() reuse cannot alias a stale compile.
_COMPILE_CACHE: dict[int, CompiledNetlist] = {}


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist`` for simulation, memoizing per netlist object.

    The cached artifact is invalidated if the netlist has structurally
    changed (gates or nets added) since it was compiled.
    """
    key = id(netlist)
    cached = _COMPILE_CACHE.get(key)
    stamp = (len(netlist.gates), netlist.num_nets)
    if cached is not None and cached.stamp == stamp:
        return cached
    compiled = _compile(netlist)
    if key not in _COMPILE_CACHE:
        weakref.finalize(netlist, _COMPILE_CACHE.pop, key, None)
    _COMPILE_CACHE[key] = compiled
    return compiled


class CycleSimulator:
    """Compiled pattern-parallel simulator for one netlist.

    Args:
        netlist: design to simulate (validated).
        n_patterns: number of parallel patterns (independent runs).
        faults: stuck-at faults to inject (usually zero or one).
        count_toggles: accumulate per-net toggle counts at each settle.
        compiled: reuse a :func:`compile_netlist` artifact (looked up from
            the per-netlist cache when omitted).
        fault_blocks: optional per-fault ``(start_word, end_word)`` ranges
            restricting each injection to a block of the pattern axis.
            Bit positions are independent simulations, so N faults confined
            to N disjoint blocks run N faulty machines in a single pass
            (the fault-parallel engine of :mod:`repro.logic.faultsim`).
            ``None`` entries (or omitting the list) inject across all
            patterns, the classic single-fault behaviour.
        toggle_blocks: accumulate toggle/load counters per pattern block
            instead of globally.  With ``toggle_blocks=B`` (which must
            divide the word count evenly), ``toggles`` becomes
            ``(B, num_nets)`` and ``load_events`` ``(B, n_dffe)``: row
            ``b`` counts only words ``[b*wpb, (b+1)*wpb)`` of the pattern
            axis, exactly what a standalone simulator over that block
            would have counted.  This is the counter side of the
            fault-parallel Monte-Carlo power kernel (each fault block
            gets its own power estimate from one wide pass).
    """

    def __init__(
        self,
        netlist: Netlist,
        n_patterns: int,
        faults: list[FaultSite] | None = None,
        count_toggles: bool = False,
        compiled: CompiledNetlist | None = None,
        fault_blocks: list[tuple[int, int] | None] | None = None,
        toggle_blocks: int | None = None,
    ):
        self.netlist = netlist
        self.compiled = compiled if compiled is not None else compile_netlist(netlist)
        self.n_patterns = n_patterns
        self.words = V.num_words(n_patterns)
        self.mask = V.tail_mask(n_patterns)
        self.count_toggles = count_toggles

        c = self.compiled
        # One backing array for both planes: row axis has two virtual
        # constant rows past ``num_nets`` (fan-in padding; see _compile).
        # ``Z``/``O`` are views, so all public indexing works unchanged.
        self._ZO = np.zeros((2, c.n_rows, self.words), dtype=_U64)
        self.Z = self._ZO[0]
        self.O = self._ZO[1]
        self._prev_Z = np.zeros_like(self.Z)
        self._prev_O = np.zeros_like(self.O)
        self._have_prev = False
        self.toggle_blocks = toggle_blocks
        if toggle_blocks is not None:
            if toggle_blocks < 1 or self.words % toggle_blocks:
                raise ValueError(
                    f"toggle_blocks={toggle_blocks} must divide the "
                    f"{self.words}-word pattern axis evenly"
                )
            self._block_wpb = self.words // toggle_blocks
            self._toggles_rows = np.zeros((toggle_blocks, c.n_rows), dtype=np.int64)
            self.toggles = self._toggles_rows[:, : c.num_nets]
        else:
            self._toggles_rows = np.zeros(c.n_rows, dtype=np.int64)
            self.toggles = self._toggles_rows[: c.num_nets]
        self.cycles_run = 0

        self._const0 = c.const0
        self._const1 = c.const1
        self._levels = c.levels
        self._seq_groups = c.seq_groups
        self._dffe_index = c.dffe_index
        if toggle_blocks is not None:
            self.load_events = np.zeros((toggle_blocks, c.n_dffe), dtype=np.int64)
        else:
            self.load_events = np.zeros(c.n_dffe, dtype=np.int64)

        # Fault bookkeeping: branch faults keyed by group id and resolved to
        # (row, pin) positions against the shared compile; stem faults keyed
        # by net and re-forced exactly where the net gets written (drives,
        # the producing level, the latch step).  Each entry carries a word
        # slice: the whole pattern axis for ordinary faults, or the fault's
        # block for block-scoped injections.
        self.faults = list(faults or [])
        if fault_blocks is not None and len(fault_blocks) != len(self.faults):
            raise ValueError("fault_blocks must parallel faults")
        blocks = fault_blocks or [None] * len(self.faults)
        self._stem: dict[int, list[tuple[slice, int]]] = {}
        self._group_poison: dict[int, list[tuple[int, int, slice, int]]] = {}
        for f, blk in zip(self.faults, blocks):
            sl = slice(None) if blk is None else slice(*blk)
            if f.is_stem:
                self._stem.setdefault(f.net, []).append((sl, f.value))
            else:
                assert f.gate_index is not None
                gid, row, pin = c.resolve_branch(f.gate_index, f.pin)
                self._group_poison.setdefault(gid, []).append((row, pin, sl, f.value))
        self._stem_levels = {
            c.net_level[net] for net in self._stem if net in c.net_level
        }
        self._stem_in_latch = -1 in self._stem_levels

        self.reset_state()

    # ----------------------------------------------------------------- state
    def reset_state(self) -> None:
        """Set every net to X, pin constants, apply stem forces."""
        self.Z[:] = 0
        self.O[:] = 0
        if len(self._const0):
            self.Z[self._const0] = self.mask
        if len(self._const1):
            self.O[self._const1] = self.mask
        self._apply_stems()
        self._have_prev = False
        self.cycles_run = 0

    def _apply_stems(self) -> None:
        for net, entries in self._stem.items():
            for sl, val in entries:
                if val:
                    self.Z[net, sl] = 0
                    self.O[net, sl] = self.mask[sl]
                else:
                    self.Z[net, sl] = self.mask[sl]
                    self.O[net, sl] = 0

    def counter_snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the accumulated ``(toggles, load_events)`` counters.

        ``toggles`` / ``load_events`` are live views into the simulator's
        accumulators (zeroed on reuse, mutated every cycle); callers that
        persist per-batch activity -- the fleet-calibration layer -- need
        a snapshot that survives the next batch.  Shapes follow the
        counter mode: ``(num_nets,)`` / ``(n_dffe,)`` globally, or
        ``(B, num_nets)`` / ``(B, n_dffe)`` with ``toggle_blocks=B``.
        """
        if not self.count_toggles:
            raise ValueError("simulator was not counting toggles")
        return self.toggles.copy(), self.load_events.copy()

    # ----------------------------------------------------------------- drive
    def drive_words(self, net: int, zero: np.ndarray, one: np.ndarray) -> None:
        """Set a primary input from raw bit-planes."""
        self.Z[net] = zero & self.mask
        self.O[net] = one & self.mask
        if net in self._stem:
            self._apply_stems()

    def drive(self, net: int, bits) -> None:
        """Set a primary input from a per-pattern 0/1 array."""
        one = V.pack_bits(np.asarray(bits, dtype=np.uint8))
        self.drive_words(net, ~one & self.mask, one & self.mask)

    def drive_const(self, net: int, value: int) -> None:
        """Set a primary input to the same known value in every pattern."""
        if value:
            self.drive_words(net, np.zeros(self.words, dtype=_U64), self.mask.copy())
        else:
            self.drive_words(net, self.mask.copy(), np.zeros(self.words, dtype=_U64))

    def drive_bus(self, nets: list[int], words) -> None:
        """Drive a bus (LSB first) from a per-pattern integer array.

        Values must fit in the bus: ``0 <= value < 2 ** len(nets)``.
        Out-of-range data would silently alias to its low bits, so it is
        rejected loudly instead.
        """
        vals = np.asarray(words, dtype=np.int64)
        if vals.size and (vals.min() < 0 or vals.max() >> len(nets)):
            raise ValueError(
                f"bus value out of range for {len(nets)}-bit bus: "
                f"min={vals.min()}, max={vals.max()}"
            )
        for i, net in enumerate(nets):
            self.drive(net, (vals >> i) & 1)

    # ------------------------------------------------------------ evaluation
    def _gather_all(self, group: _Group):
        """Fetch every input pin of a group in one fancy index.

        Returns (z, o) of shape ``(n_gates, arity, words)``.  Fancy indexing
        yields fresh copies, so branch-fault poisons mutate them in place.
        """
        zo = self._ZO[:, group.inputs]
        z, o = zo[0], zo[1]
        hits = self._group_poison.get(group.gid) if self._group_poison else None
        if hits:
            for row, pin, sl, val in hits:
                if val:
                    z[row, pin, sl] = 0
                    o[row, pin, sl] = self.mask[sl]
                else:
                    z[row, pin, sl] = self.mask[sl]
                    o[row, pin, sl] = 0
        return z, o

    def _eval_group(self, group: _Group):
        t = group.gtype
        zi, oi = self._gather_all(group)
        # Folds evaluate with one ufunc.reduce over the pin axis; mixed
        # fan-ins were padded to the group arity with identity constants.
        if t in (GateType.AND, GateType.NAND):
            z = np.bitwise_or.reduce(zi, axis=1)
            o = np.bitwise_and.reduce(oi, axis=1)
            return (o, z) if t is GateType.NAND else (z, o)
        if t in (GateType.OR, GateType.NOR):
            z = np.bitwise_and.reduce(zi, axis=1)
            o = np.bitwise_or.reduce(oi, axis=1)
            return (o, z) if t is GateType.NOR else (z, o)
        if t in (GateType.XOR, GateType.XNOR):
            known = np.bitwise_and.reduce(zi | oi, axis=1)
            o = np.bitwise_xor.reduce(oi, axis=1) & known
            z = known & ~o
            return (o, z) if t is GateType.XNOR else (z, o)
        if t is GateType.NOT:
            return oi[:, 0], zi[:, 0]
        if t is GateType.BUF:
            return zi[:, 0], oi[:, 0]
        if t is GateType.MUX2:
            return V.v_mux2(
                zi[:, 0], oi[:, 0], zi[:, 1], oi[:, 1], zi[:, 2], oi[:, 2]
            )
        raise AssertionError(f"unexpected comb gate type {t}")

    def settle(self) -> None:
        """Evaluate all combinational logic for the current cycle."""
        stem_levels = self._stem_levels
        for lvl, level in enumerate(self._levels):
            for group in level:
                z, o = self._eval_group(group)
                self.Z[group.outputs] = z
                self.O[group.outputs] = o
            if lvl in stem_levels:
                self._apply_stems()
        if self.count_toggles:
            if self._have_prev:
                flips = (self._prev_Z & self.O) | (self._prev_O & self.Z)
                self._toggles_rows += self._count_words(np.bitwise_count(flips))
            np.copyto(self._prev_Z, self.Z)
            np.copyto(self._prev_O, self.O)
            self._have_prev = True

    def _count_words(self, counts: np.ndarray) -> np.ndarray:
        """Reduce per-word popcounts ``(rows, words)`` to counter shape.

        Global counters sum the whole pattern axis; per-block counters
        (``toggle_blocks``) sum each block's word range separately and
        transpose to ``(blocks, rows)``, matching the counter layout.
        Both are exact integer sums, so a block row equals what the same
        simulation restricted to that block would have accumulated.
        """
        if self.toggle_blocks is None:
            return counts.sum(axis=1, dtype=np.int64)
        rows = counts.shape[0]
        return (
            counts.reshape(rows, self.toggle_blocks, self._block_wpb)
            .sum(axis=2, dtype=np.int64)
            .T
        )

    def latch(self) -> None:
        """Clock edge: update all flip-flop outputs from settled values."""
        self.latch_groups(self._seq_groups)

    def latch_groups(self, groups: list[_Group]) -> None:
        """Clock edge restricted to the given sequential groups.

        ``latch`` passes the full compiled set; the cone-restricted fault
        engine passes only the flip-flops inside a chunk's union cone
        (every other register is replayed from the golden trace).  The
        two-phase update (gather every D/enable first, then write every
        Q) and the post-latch stem re-force match the full clock edge
        exactly.
        """
        updates = []
        for group in groups:
            zi, oi = self._gather_all(group)
            if group.gtype is GateType.DFF:
                updates.append((group.outputs, zi[:, 0], oi[:, 0]))
            else:  # DFFE: pins (en, d)
                ze, oe = zi[:, 0], oi[:, 0]
                zq = self.Z[group.outputs]
                oq = self.O[group.outputs]
                z, o = V.v_mux2(ze, oe, zq, oq, zi[:, 1], oi[:, 1])
                updates.append((group.outputs, z, o))
                if self.count_toggles:
                    counts = self._count_words(np.bitwise_count(oe))
                    if self.toggle_blocks is None:
                        self.load_events[group.dffe_rows] += counts
                    else:
                        self.load_events[:, group.dffe_rows] += counts
        for outputs, z, o in updates:
            self.Z[outputs] = z
            self.O[outputs] = o
        if self._stem and self._stem_in_latch:
            self._apply_stems()
        self.cycles_run += 1

    # --------------------------------------------------------------- planes
    def snapshot_planes(self) -> np.ndarray:
        """Copy the full (2, n_rows, words) state -- both value planes.

        Row axis covers every net plus the two virtual constant rows, so
        a snapshot captures driven inputs, settled combinational values,
        current flip-flop outputs and the pinned constants alike.  The
        cone-restricted fault engine records one snapshot per golden
        cycle and replays it with :meth:`load_tiled_planes`.
        """
        return self._ZO.copy()

    def load_tiled_planes(self, planes: np.ndarray) -> None:
        """Overwrite the whole state from a narrower snapshot, tiled.

        ``planes`` must be a ``(2, n_rows, words / reps)`` snapshot whose
        word count divides this simulator's; it is broadcast across the
        ``reps`` pattern blocks without allocating (the preallocated
        backing array is written in place).  Stem forces are *not*
        reapplied -- callers that inject faults must follow up exactly as
        a drive would.
        """
        n_rows, words = self._ZO.shape[1:]
        src_words = planes.shape[2]
        if planes.shape[:2] != (2, n_rows) or words % src_words:
            raise ValueError(
                f"cannot tile a {planes.shape} snapshot into (2, {n_rows}, {words})"
            )
        reps = words // src_words
        self._ZO.reshape(2, n_rows, reps, src_words)[:] = planes[:, :, None, :]

    # ------------------------------------------------------------- observing
    def planes(self, net: int):
        """Return the (zero, one) planes of a net (views, do not mutate)."""
        return self.Z[net], self.O[net]

    def sample(self, net: int) -> np.ndarray:
        """Return per-pattern values as int8: 0, 1, or -1 for X."""
        z = V.unpack_bits(self.Z[net], self.n_patterns).astype(np.int8)
        o = V.unpack_bits(self.O[net], self.n_patterns).astype(np.int8)
        out = np.full(self.n_patterns, -1, dtype=np.int8)
        out[z == 1] = 0
        out[o == 1] = 1
        return out

    def sample_bus(self, nets: list[int]) -> np.ndarray:
        """Bus values per pattern as int64, or -1 where any bit is X."""
        vals = np.zeros(self.n_patterns, dtype=np.int64)
        bad = np.zeros(self.n_patterns, dtype=bool)
        for i, net in enumerate(nets):
            bit = self.sample(net)
            bad |= bit < 0
            vals |= (bit.astype(np.int64) & 1) << i
        vals[bad] = -1
        return vals
