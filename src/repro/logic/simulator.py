"""Pattern-parallel, three-valued, zero-delay cycle simulator.

The simulator compiles a netlist once into level-ordered *groups* of gates
with identical (type, fan-in) so each group evaluates with a handful of
vectorised numpy operations over all patterns at once.  It supports:

* stuck-at fault injection (stem faults force a net, branch faults poison a
  single gate's view of one input pin);
* per-net toggle counting and per-register load-event counting, which feed
  the switched-capacitance power model;
* X (unknown) propagation -- flip-flops power up X, which is how the
  GENTEST-style "potentially detected" verdict arises.

Typical use::

    sim = CycleSimulator(netlist, n_patterns=256, faults=[site])
    for cycle in range(n_cycles):
        sim.drive(net, bits)            # or drive_const / drive_words
        sim.settle()                    # evaluate combinational logic
        z, o = sim.planes(out_net)      # observe
        sim.latch()                     # clock edge
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.gates import GateType, is_constant, is_sequential
from ..netlist.netlist import Netlist
from . import values as V
from .faults import FaultSite
from .levelize import levelize

_U64 = np.uint64


@dataclass
class _Group:
    gtype: GateType
    gate_idx: np.ndarray  # (n,)
    outputs: np.ndarray  # (n,)
    inputs: np.ndarray  # (n, arity)
    gid: int = -1  # unique id assigned at compile time


def _make_groups(netlist: Netlist, gate_indices: list[int]) -> list[_Group]:
    buckets: dict[tuple[GateType, int], list[int]] = {}
    for gi in gate_indices:
        g = netlist.gates[gi]
        buckets.setdefault((g.gtype, len(g.inputs)), []).append(gi)
    groups = []
    for (gtype, _arity), idxs in sorted(buckets.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
        gates = [netlist.gates[i] for i in idxs]
        groups.append(
            _Group(
                gtype=gtype,
                gate_idx=np.array(idxs, dtype=np.int64),
                outputs=np.array([g.output for g in gates], dtype=np.int64),
                inputs=np.array([g.inputs for g in gates], dtype=np.int64),
            )
        )
    return groups


class CycleSimulator:
    """Compiled pattern-parallel simulator for one netlist.

    Args:
        netlist: design to simulate (validated).
        n_patterns: number of parallel patterns (independent runs).
        faults: stuck-at faults to inject (usually zero or one).
        count_toggles: accumulate per-net toggle counts at each settle.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_patterns: int,
        faults: list[FaultSite] | None = None,
        count_toggles: bool = False,
    ):
        netlist.validate()
        self.netlist = netlist
        self.n_patterns = n_patterns
        self.words = V.num_words(n_patterns)
        self.mask = V.tail_mask(n_patterns)
        self.count_toggles = count_toggles

        n = netlist.num_nets
        self.Z = np.zeros((n, self.words), dtype=_U64)
        self.O = np.zeros((n, self.words), dtype=_U64)
        self._prev_Z = np.zeros_like(self.Z)
        self._prev_O = np.zeros_like(self.O)
        self._have_prev = False
        self.toggles = np.zeros(n, dtype=np.int64)
        self.cycles_run = 0

        # Compile: constants, levelled comb groups, sequential groups.
        self._const0 = [g.output for g in netlist.gates if g.gtype is GateType.CONST0]
        self._const1 = [g.output for g in netlist.gates if g.gtype is GateType.CONST1]
        self._levels = [_make_groups(netlist, lvl) for lvl in levelize(netlist)]
        seq_idx = [g.index for g in netlist.gates if is_sequential(g.gtype)]
        self._seq_groups = _make_groups(netlist, seq_idx)
        dffe = [g for g in netlist.gates if g.gtype is GateType.DFFE]
        self._dffe_index = {g.index: row for row, g in enumerate(dffe)}
        self.load_events = np.zeros(len(dffe), dtype=np.int64)

        # Fault bookkeeping: branch faults keyed by (group id, pin) and
        # resolved to row positions at compile time; stem faults keyed by
        # net and re-forced wherever the net gets written.
        self.faults = list(faults or [])
        self._stem: dict[int, int] = {}
        branch: dict[tuple[int, int], int] = {}
        for f in self.faults:
            if f.is_stem:
                self._stem[f.net] = f.value
            else:
                assert f.gate_index is not None
                branch[(f.gate_index, f.pin)] = f.value
        gate_to_slot: dict[int, tuple[int, int]] = {}
        gid = 0
        for level in self._levels:
            for group in level:
                group.gid = gid
                gid += 1
                for row, g in enumerate(group.gate_idx):
                    gate_to_slot[int(g)] = (group.gid, row)
        for group in self._seq_groups:
            group.gid = gid
            gid += 1
            for row, g in enumerate(group.gate_idx):
                gate_to_slot[int(g)] = (group.gid, row)
        self._poison_map: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for (gate_index, pin), val in branch.items():
            grp, row = gate_to_slot[gate_index]
            self._poison_map.setdefault((grp, pin), []).append((row, val))

        self.reset_state()

    # ----------------------------------------------------------------- state
    def reset_state(self) -> None:
        """Set every net to X, pin constants, apply stem forces."""
        self.Z[:] = 0
        self.O[:] = 0
        for nid in self._const0:
            self.Z[nid] = self.mask
        for nid in self._const1:
            self.O[nid] = self.mask
        self._apply_stems()
        self._have_prev = False
        self.cycles_run = 0

    def _apply_stems(self) -> None:
        for net, val in self._stem.items():
            if val:
                self.Z[net] = 0
                self.O[net] = self.mask
            else:
                self.Z[net] = self.mask
                self.O[net] = 0

    # ----------------------------------------------------------------- drive
    def drive_words(self, net: int, zero: np.ndarray, one: np.ndarray) -> None:
        """Set a primary input from raw bit-planes."""
        self.Z[net] = zero & self.mask
        self.O[net] = one & self.mask
        if net in self._stem:
            self._apply_stems()

    def drive(self, net: int, bits) -> None:
        """Set a primary input from a per-pattern 0/1 array."""
        one = V.pack_bits(np.asarray(bits, dtype=np.uint8))
        self.drive_words(net, ~one & self.mask, one & self.mask)

    def drive_const(self, net: int, value: int) -> None:
        """Set a primary input to the same known value in every pattern."""
        if value:
            self.drive_words(net, np.zeros(self.words, dtype=_U64), self.mask.copy())
        else:
            self.drive_words(net, self.mask.copy(), np.zeros(self.words, dtype=_U64))

    def drive_bus(self, nets: list[int], words) -> None:
        """Drive a bus (LSB first) from a per-pattern integer array."""
        vals = np.asarray(words, dtype=np.int64)
        for i, net in enumerate(nets):
            self.drive(net, (vals >> i) & 1)

    # ------------------------------------------------------------ evaluation
    def _gather(self, group: _Group, pin: int):
        nets = group.inputs[:, pin]
        z = self.Z[nets]
        o = self.O[nets]
        return self._poison(group, pin, z, o)

    def _poison(self, group: _Group, pin: int, z, o):
        hits = self._poison_map.get((group.gid, pin)) if self._poison_map else None
        if hits:
            # ``z``/``o`` come from fancy indexing, so they are fresh copies
            # and safe to mutate in place.
            for row, val in hits:
                if val:
                    z[row] = 0
                    o[row] = self.mask
                else:
                    z[row] = self.mask
                    o[row] = 0
        return z, o

    def _eval_group(self, group: _Group):
        t = group.gtype
        if t in (GateType.AND, GateType.NAND):
            z, o = self._gather(group, 0)
            for k in range(1, group.inputs.shape[1]):
                z2, o2 = self._gather(group, k)
                z, o = V.v_and2(z, o, z2, o2)
            return (o, z) if t is GateType.NAND else (z, o)
        if t in (GateType.OR, GateType.NOR):
            z, o = self._gather(group, 0)
            for k in range(1, group.inputs.shape[1]):
                z2, o2 = self._gather(group, k)
                z, o = V.v_or2(z, o, z2, o2)
            return (o, z) if t is GateType.NOR else (z, o)
        if t in (GateType.XOR, GateType.XNOR):
            z, o = self._gather(group, 0)
            for k in range(1, group.inputs.shape[1]):
                z2, o2 = self._gather(group, k)
                z, o = V.v_xor2(z, o, z2, o2)
            return (o, z) if t is GateType.XNOR else (z, o)
        if t is GateType.NOT:
            z, o = self._gather(group, 0)
            return o, z
        if t is GateType.BUF:
            return self._gather(group, 0)
        if t is GateType.MUX2:
            zs, os = self._gather(group, 0)
            za, oa = self._gather(group, 1)
            zb, ob = self._gather(group, 2)
            return V.v_mux2(zs, os, za, oa, zb, ob)
        raise AssertionError(f"unexpected comb gate type {t}")

    def settle(self) -> None:
        """Evaluate all combinational logic for the current cycle."""
        for level in self._levels:
            for group in level:
                z, o = self._eval_group(group)
                self.Z[group.outputs] = z
                self.O[group.outputs] = o
            if self._stem:
                self._apply_stems()
        if self.count_toggles:
            if self._have_prev:
                flips = (self._prev_Z & self.O) | (self._prev_O & self.Z)
                self.toggles += np.bitwise_count(flips).sum(axis=1, dtype=np.int64)
            np.copyto(self._prev_Z, self.Z)
            np.copyto(self._prev_O, self.O)
            self._have_prev = True

    def latch(self) -> None:
        """Clock edge: update all flip-flop outputs from settled values."""
        updates = []
        for group in self._seq_groups:
            if group.gtype is GateType.DFF:
                zd, od = self._gather(group, 0)
                updates.append((group.outputs, zd, od))
            else:  # DFFE: pins (en, d)
                ze, oe = self._gather(group, 0)
                zd, od = self._gather(group, 1)
                zq = self.Z[group.outputs]
                oq = self.O[group.outputs]
                z, o = V.v_mux2(ze, oe, zq, oq, zd, od)
                updates.append((group.outputs, z, o))
                if self.count_toggles:
                    self.load_events[
                        [self._dffe_index[int(gi)] for gi in group.gate_idx]
                    ] += np.bitwise_count(oe).sum(axis=1, dtype=np.int64)
        for outputs, z, o in updates:
            self.Z[outputs] = z
            self.O[outputs] = o
        if self._stem:
            self._apply_stems()
        self.cycles_run += 1

    # ------------------------------------------------------------- observing
    def planes(self, net: int):
        """Return the (zero, one) planes of a net (views, do not mutate)."""
        return self.Z[net], self.O[net]

    def sample(self, net: int) -> np.ndarray:
        """Return per-pattern values as int8: 0, 1, or -1 for X."""
        z = V.unpack_bits(self.Z[net], self.n_patterns).astype(np.int8)
        o = V.unpack_bits(self.O[net], self.n_patterns).astype(np.int8)
        out = np.full(self.n_patterns, -1, dtype=np.int8)
        out[z == 1] = 0
        out[o == 1] = 1
        return out

    def sample_bus(self, nets: list[int]) -> np.ndarray:
        """Bus values per pattern as int64, or -1 where any bit is X."""
        vals = np.zeros(self.n_patterns, dtype=np.int64)
        bad = np.zeros(self.n_patterns, dtype=bool)
        for i, net in enumerate(nets):
            bit = self.sample(net)
            bad |= bit < 0
            vals |= (bit.astype(np.int64) & 1) << i
        vals[bad] = -1
        return vals
