"""Sequential fault cones: where a stuck-at fault can ever matter.

A stuck-at fault can only disturb nets in the *sequential transitive
fanout* of its site -- the closure of "gates reading a disturbed net
produce a disturbed output", iterated to a fixed point straight through
flip-flops (a disturbed D pin disturbs the Q output one cycle later, so
multi-cycle reachability is the same closure on the static graph).
Everything outside that cone is provably identical to the fault-free
machine in every cycle of every pattern.

The cone-restricted engine in :mod:`repro.logic.faultsim` exploits this
three ways:

* faults whose cone misses every observed net are reported UNDETECTED
  without simulating a single cycle (no disturbance can reach an output);
* a chunk of faults simulates only the union of its cones, reading every
  non-cone net from the recorded fault-free trace;
* faults are chunked by cone signature (:func:`chunk_by_cone`), so the
  faults batched into one wide simulator share most of their union cone.

Cones are derived from the :class:`~repro.netlist.netlist.Netlist` alone
-- no simulation -- and are exact for the closure property, conservative
for detectability (a net in the cone *may* diverge, a net outside it
*cannot*).  ``tests/test_cones.py`` checks both directions: the closure
equals brute-force multi-cycle reachability on randomized netlists, and
every net that actually diverges in a faulted simulation lies inside the
computed cone.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..netlist.netlist import Netlist
from .faults import FaultSite
from .levelize import gate_levels


@dataclass(frozen=True)
class FaultCone:
    """Sequential transitive fanout of one fault site.

    ``gates`` are the gate indices whose evaluation the fault can ever
    influence (combinational and sequential); ``nets`` are the net ids
    that can ever differ from the fault-free machine -- the fault's own
    net plus every output of a cone gate.
    """

    gates: frozenset[int]
    nets: frozenset[int]

    def observable(self, observe: list[int]) -> bool:
        """Can the fault ever reach one of the observed nets?"""
        return not self.nets.isdisjoint(observe)


#: per-netlist reachability cache, keyed like the compile cache: object
#: identity plus a cheap mutation stamp (entries drop with the netlist).
#: Each entry carries the reach/input matrices plus a memo of per-seed
#: closure sets, shared by every campaign on the same netlist.
_REACH_CACHE: dict[
    int, tuple[tuple[int, int], "np.ndarray", "np.ndarray", dict]
] = {}


def _reach_matrix(
    netlist: Netlist, fanout: dict[int, list[tuple[int, int]]]
) -> tuple["np.ndarray", "np.ndarray", dict]:
    """All-pairs sequential reachability, vectorized.

    Returns ``(reach, in_mat)``: ``reach[a, b]`` is True when a
    disturbance on net ``a`` can ever (through any number of gates and
    clock edges) disturb net ``b`` -- the reflexive-transitive closure of
    the one-step relation "some gate reads ``a`` and outputs ``b``" --
    and ``in_mat[a, g]`` marks gate ``g`` reading net ``a``.  The closure
    crosses flip-flops like any other gate: a disturbed D or enable pin
    disturbs the Q net one clock edge later, which is one more step of
    the same static relation.  Repeated squaring doubles the covered path
    length per matrix product, so the fixpoint lands in O(log diameter)
    products instead of one python BFS per seed.
    """
    key = id(netlist)
    stamp = (len(netlist.gates), netlist.num_nets)
    cached = _REACH_CACHE.get(key)
    if cached is not None and cached[0] == stamp:
        return cached[1], cached[2], cached[3]
    n = netlist.num_nets
    step = np.zeros((n, n), dtype=bool)
    in_mat = np.zeros((n, len(netlist.gates)), dtype=bool)
    for net in range(n):
        for gate_idx, _pin in fanout[net]:
            step[net, netlist.gates[gate_idx].output] = True
            in_mat[net, gate_idx] = True
    reach = step.copy()
    np.fill_diagonal(reach, True)
    while True:
        sq = reach.astype(np.float32)
        grown = (sq @ sq) > 0
        if np.array_equal(grown, reach):
            break
        reach = grown
    if key not in _REACH_CACHE:
        weakref.finalize(netlist, _REACH_CACHE.pop, key, None)
    closures: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
    _REACH_CACHE[key] = (stamp, reach, in_mat, closures)
    return reach, in_mat, closures


def net_closure(
    netlist: Netlist, seeds: list[int]
) -> tuple[frozenset[int], frozenset[int]]:
    """Sequential transitive fanout of a set of nets.

    Returns ``(gates, nets)``: every gate whose evaluation a disturbance
    on any seed net can ever influence, and every net that can ever
    differ -- the same closure :func:`compute_cones` builds per fault,
    exposed for callers that reason about *edits* rather than faults
    (the incremental planner treats a netlist delta as a disturbance
    source and reuses this cache).
    """
    fanout = netlist.fanout_map()
    reach, in_mat, closures = _reach_matrix(netlist, fanout)
    gates: frozenset[int] = frozenset()
    nets: frozenset[int] = frozenset()
    for seed in seeds:
        got = closures.get(seed)
        if got is None:
            row = reach[seed]
            seed_nets = frozenset(np.flatnonzero(row).tolist())
            seed_gates = frozenset(
                np.flatnonzero(row.astype(np.float32) @ in_mat).tolist()
            )
            got = closures[seed] = (seed_gates, seed_nets)
        gates |= got[0]
        nets |= got[1]
    return gates, nets


def compute_cones(
    netlist: Netlist, faults: list[FaultSite]
) -> dict[FaultSite, FaultCone]:
    """The :class:`FaultCone` of every fault, sharing closure work.

    Stem faults (and primary-input stems) seed the closure at the forced
    net.  A branch fault only corrupts one gate's *view* of its input
    pin, so its cone is that gate plus the closure of the gate's output.
    A seed's driver is *not* pulled in (a stem force overrides whatever
    the driver computes) unless a sequential loop re-reaches it.
    Closures come from one shared all-pairs reachability matrix and are
    memoized per seed net -- the two polarities of a fault pair, and
    every branch fault on the same gate, share one row.  The memo lives
    in the netlist's reachability cache entry, so repeated campaigns on
    one netlist (workers, benchmarks, resumed runs) never re-derive a
    closure set.
    """
    fanout = netlist.fanout_map()
    reach, in_mat, closures = _reach_matrix(netlist, fanout)

    def closure(seed: int) -> tuple[frozenset[int], frozenset[int]]:
        got = closures.get(seed)
        if got is None:
            row = reach[seed]
            nets = frozenset(np.flatnonzero(row).tolist())
            gates = frozenset(
                np.flatnonzero(row.astype(np.float32) @ in_mat).tolist()
            )
            got = closures[seed] = (gates, nets)
        return got

    cones: dict[FaultSite, FaultCone] = {}
    shared: dict[tuple[bool, int], FaultCone] = {}
    for fault in faults:
        if fault in cones:
            continue
        if fault.is_stem:
            site = (True, fault.net)
        else:
            assert fault.gate_index is not None
            site = (False, fault.gate_index)
        cone = shared.get(site)
        if cone is None:
            if fault.is_stem:
                gates, nets = closure(fault.net)
                cone = FaultCone(gates=gates, nets=nets)
            else:
                out = netlist.gates[fault.gate_index].output
                gates, nets = closure(out)
                cone = FaultCone(
                    gates=gates | {fault.gate_index}, nets=nets | {out}
                )
            shared[site] = cone
        cones[fault] = cone
    return cones


def chunk_by_cone(
    faults: list[FaultSite],
    cones: dict[FaultSite, FaultCone],
    batch_faults: int,
    netlist: Netlist,
    key,
) -> list[list[FaultSite]]:
    """Chunk ``faults`` so each chunk shares most of its union cone.

    Faults are ordered by (cone size, cone signature, site depth, fault
    key) -- identical or nested cones sort adjacently regardless of where
    their sites sit, keeping each chunk's union cone close to its
    members' own cones (ordering by site depth first was measurably
    worse: faults at one depth can fan out to disjoint halves of the
    machine) -- then sliced into ``batch_faults``-sized chunks.  The
    ordering is a pure scheduling choice: per-fault verdicts are
    independent of chunk composition, so results are bit-identical to any
    other chunking (``tests/test_cones.py`` asserts this).

    ``key`` maps a fault to its stable campaign key (the deterministic
    tiebreak); ``netlist`` supplies gate depths via
    :func:`~repro.logic.levelize.gate_levels`.
    """
    depth = gate_levels(netlist)
    signatures: dict[int, tuple[int, ...]] = {}

    def order(fault: FaultSite):
        cone = cones[fault]
        sig = signatures.get(id(cone.gates))
        if sig is None:
            sig = signatures[id(cone.gates)] = tuple(sorted(cone.gates))
        site_depth = 0 if fault.gate_index is None else depth[fault.gate_index]
        return (len(sig), sig, site_depth, key(fault))

    ordered = sorted(faults, key=order)
    size = max(1, batch_faults)
    return [ordered[i : i + size] for i in range(0, len(ordered), size)]
