"""Packed three-valued (0/1/X) logic over uint64 bit-planes.

A signal carried by ``P`` parallel patterns is stored as two numpy arrays of
``W = ceil(P/64)`` words:

* ``zero`` -- bit set where the signal is known 0,
* ``one``  -- bit set where the signal is known 1.

A bit position with neither plane set is X (unknown); both set is illegal.
This is the classic "dual-rail" encoding used by parallel-pattern fault
simulators; every gate evaluates with a handful of bitwise word operations
regardless of how many patterns are in flight.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
_U64 = np.uint64


def num_words(n_patterns: int) -> int:
    """Words needed to carry ``n_patterns`` patterns."""
    if n_patterns <= 0:
        raise ValueError("need at least one pattern")
    return (n_patterns + WORD_BITS - 1) // WORD_BITS


def tail_mask(n_patterns: int) -> np.ndarray:
    """Per-word mask with only the first ``n_patterns`` bit positions set."""
    words = num_words(n_patterns)
    mask = np.full(words, ~_U64(0), dtype=_U64)
    rem = n_patterns % WORD_BITS
    if rem:
        mask[-1] = _U64((1 << rem) - 1)
    return mask


def pack_bits(bits: list[int] | np.ndarray) -> np.ndarray:
    """Pack a list of 0/1 ints into a word array (bit i = pattern i)."""
    bits = np.asarray(bits, dtype=np.uint8)
    words = num_words(len(bits))
    padded = np.zeros(words * WORD_BITS, dtype=np.uint8)
    padded[: len(bits)] = bits
    # Little-endian bit order within bytes matches little-endian byte order
    # within uint64 words on all supported platforms.
    out = np.packbits(padded, bitorder="little")
    return out.view(_U64).copy()


def unpack_bits(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: return uint8 array of length n_patterns."""
    as_bytes = np.ascontiguousarray(words, dtype=_U64).view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")[:n_patterns].copy()


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across the word array."""
    return int(np.bitwise_count(words).sum())


# --------------------------------------------------------------------------
# Gate evaluation on (zero, one) plane pairs.  All functions take/return
# numpy arrays and never mutate their inputs.
# --------------------------------------------------------------------------

def v_not(z: np.ndarray, o: np.ndarray):
    return o, z


def v_and2(z1, o1, z2, o2):
    return z1 | z2, o1 & o2


def v_or2(z1, o1, z2, o2):
    return z1 & z2, o1 | o2


def v_xor2(z1, o1, z2, o2):
    known = (z1 | o1) & (z2 | o2)
    val = (o1 ^ o2) & known
    return known & ~val, val


def v_mux2(zs, os, za, oa, zb, ob):
    """3-valued 2:1 mux: sel ? b : a (X-sel resolves only when a == b)."""
    one = (os & ob) | (zs & oa) | (oa & ob)
    zero = (os & zb) | (zs & za) | (za & zb)
    return zero, one


def v_reduce(op, planes):
    """Fold a 2-input plane operation over a list of (z, o) pairs."""
    z, o = planes[0]
    for z2, o2 in planes[1:]:
        z, o = op(z, o, z2, o2)
    return z, o


def known_mask(z: np.ndarray, o: np.ndarray) -> np.ndarray:
    """Mask of patterns where the value is not X."""
    return z | o


def diff_mask(z1, o1, z2, o2) -> np.ndarray:
    """Patterns where both values are known and differ."""
    return (z1 & o2) | (o1 & z2)


def toggle_count(z_prev, o_prev, z_cur, o_cur) -> int:
    """Count known 0->1 / 1->0 transitions between two value planes."""
    return popcount((z_prev & o_cur) | (o_prev & z_cur))
