"""Topological levelization of a netlist's combinational core.

Flip-flop outputs, constants and primary inputs are level-0 sources; every
combinational gate is assigned the smallest level strictly greater than all
of its input levels.  A combinational cycle is a structural error and is
reported with the participating gate names.
"""

from __future__ import annotations

from ..netlist.gates import is_constant, is_sequential
from ..netlist.netlist import Netlist, NetlistError


def levelize(netlist: Netlist) -> list[list[int]]:
    """Return combinational gate indices grouped by level (level 1 first).

    Constant gates are folded into level 0 sources and are not returned;
    the simulator pins their values once.

    Raises:
        NetlistError: if a combinational loop exists.
    """
    comb = [g for g in netlist.gates if not is_sequential(g.gtype) and not is_constant(g.gtype)]
    # Net -> producing combinational gate (sources have none).
    producer: dict[int, int] = {}
    for g in comb:
        producer[g.output] = g.index
    gate_by_index = {g.index: g for g in comb}

    # Kahn's algorithm over the comb subgraph.
    indegree: dict[int, int] = {}
    dependents: dict[int, list[int]] = {g.index: [] for g in comb}
    for g in comb:
        deg = 0
        for nid in g.inputs:
            src = producer.get(nid)
            if src is not None:
                deg += 1
                dependents[src].append(g.index)
        indegree[g.index] = deg

    level_of: dict[int, int] = {}
    frontier = [gi for gi, deg in indegree.items() if deg == 0]
    for gi in frontier:
        level_of[gi] = 1
    levels: list[list[int]] = []
    current = frontier
    while current:
        levels.append(sorted(current))
        nxt: list[int] = []
        for gi in current:
            for dep in dependents[gi]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    level_of[dep] = level_of[gi] + 1
                    nxt.append(dep)
        # Regroup by true level: gates can be released early by Kahn order,
        # so re-bucket at the end instead of trusting the wavefront.
        current = nxt

    if len(level_of) != len(comb):
        stuck = [gate_by_index[g.index].name for g in comb if g.index not in level_of]
        raise NetlistError(f"combinational loop involving gates {stuck[:8]}")

    by_level: dict[int, list[int]] = {}
    for gi, lvl in level_of.items():
        by_level.setdefault(lvl, []).append(gi)
    return [sorted(by_level[lvl]) for lvl in sorted(by_level)]


def logic_depth(netlist: Netlist) -> int:
    """Number of combinational levels (0 for purely sequential netlists)."""
    return len(levelize(netlist))


def gate_levels(netlist: Netlist) -> dict[int, int]:
    """Flatten :func:`levelize` into gate index -> level.

    Combinational gates get their 1-based topological level; sequential
    and constant gates (level-0 sources) get 0.  Used by
    :mod:`repro.logic.cones` to order faults by site depth so that
    cone-overlap-aware chunking groups faults of similar locality.
    """
    levels = {g.index: 0 for g in netlist.gates}
    for lvl, gates in enumerate(levelize(netlist), start=1):
        for gi in gates:
            levels[gi] = lvl
    return levels
