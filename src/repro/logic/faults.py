"""Single stuck-at fault model with structural equivalence collapsing.

Fault sites follow the classic convention: every gate contributes a *stem*
fault pair on its output net and a *branch* fault pair on each input pin.
Primary inputs contribute stem pairs.  Collapsing merges faults that are
provably equivalent from structure alone:

* AND:  any input s-a-0  ==  output s-a-0      (NAND: output s-a-1)
* OR:   any input s-a-1  ==  output s-a-1      (NOR:  output s-a-0)
* NOT:  input s-a-v  ==  output s-a-(1-v);  BUF: input s-a-v == output s-a-v
* a fanout-free stem is equivalent to its single branch.

The collapsed universe is what Table 2 of the paper counts ("total faults"
within the controller).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.gates import GateType, is_constant
from ..netlist.netlist import Gate, Netlist


@dataclass(frozen=True)
class FaultSite:
    """One stuck-at fault.

    ``gate_index`` is None for a primary-input stem.  ``pin`` is -1 for a
    stem (output) fault, otherwise the input pin index.  ``net`` is the net
    the fault lives on (the gate output for stems, the pin's net for
    branches -- branches only affect the one reading gate).
    """

    gate_index: int | None
    pin: int
    net: int
    value: int

    @property
    def is_stem(self) -> bool:
        return self.pin == -1

    def describe(self, netlist: Netlist) -> str:
        """Human-readable fault name, e.g. ``u12.in1 s-a-0``."""
        sa = f"s-a-{self.value}"
        if self.gate_index is None:
            return f"PI {netlist.net_names[self.net]} {sa}"
        gate = netlist.gates[self.gate_index]
        if self.is_stem:
            return f"{gate.name}.out({netlist.net_names[self.net]}) {sa}"
        return f"{gate.name}.in{self.pin}({netlist.net_names[self.net]}) {sa}"


def enumerate_faults(
    netlist: Netlist,
    gates: list[Gate] | None = None,
    include_pi_stems: bool = False,
) -> list[FaultSite]:
    """All stem+branch stuck-at faults on ``gates`` (default: every gate).

    Constant-driver gates contribute only the stem fault of the opposite
    polarity, and pins tied to a constant net are likewise skipped for the
    matching polarity -- sticking a tied-off pin at its tied value is
    untestable by construction and not part of any tool's fault universe.
    """
    if gates is None:
        gates = netlist.gates

    def tied_value(net: int) -> int | None:
        driver = netlist.driver_of(net)
        if driver is None or not is_constant(driver.gtype):
            return None
        return 0 if driver.gtype is GateType.CONST0 else 1

    sites: list[FaultSite] = []
    for g in gates:
        if is_constant(g.gtype):
            bad = 1 if g.gtype is GateType.CONST0 else 0
            sites.append(FaultSite(g.index, -1, g.output, bad))
            continue
        for v in (0, 1):
            sites.append(FaultSite(g.index, -1, g.output, v))
        for pin, net in enumerate(g.inputs):
            for v in (0, 1):
                if tied_value(net) == v:
                    continue
                sites.append(FaultSite(g.index, pin, net, v))
    if include_pi_stems:
        for net in netlist.inputs:
            for v in (0, 1):
                sites.append(FaultSite(None, -1, net, v))
    return sites


class _UnionFind:
    def __init__(self):
        self.parent: dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


# Controlling input value and the equivalent output value it forces.
_CONTROLLING = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def collapse_faults(
    netlist: Netlist, sites: list[FaultSite]
) -> tuple[list[FaultSite], dict[FaultSite, FaultSite]]:
    """Equivalence-collapse ``sites``.

    Returns:
        (representatives, mapping of every site to its representative).
        Representatives are chosen deterministically (first in input order)
        so results are stable across runs.
    """
    present = set(sites)
    uf = _UnionFind()
    gate_set = {s.gate_index for s in sites if s.gate_index is not None}
    fanout = netlist.fanout_map()

    for gi in gate_set:
        g = netlist.gates[gi]
        if g.gtype in _CONTROLLING:
            cv, ov = _CONTROLLING[g.gtype]
            stem = FaultSite(gi, -1, g.output, ov)
            for pin, net in enumerate(g.inputs):
                branch = FaultSite(gi, pin, net, cv)
                if stem in present and branch in present:
                    uf.union(stem, branch)
        elif g.gtype in (GateType.NOT, GateType.BUF):
            invert = g.gtype is GateType.NOT
            for v in (0, 1):
                branch = FaultSite(gi, 0, g.inputs[0], v)
                stem = FaultSite(gi, -1, g.output, (1 - v) if invert else v)
                if stem in present and branch in present:
                    uf.union(branch, stem)

    # Fanout-free stems merge with their single branch -- unless the net is
    # itself observed as a primary output, where the stem is visible on a
    # path the branch fault cannot reach.
    observed = set(netlist.outputs)
    for s in sites:
        if not s.is_stem or s.net in observed:
            continue
        readers = fanout[s.net]
        if len(readers) == 1:
            g_idx, pin = readers[0]
            branch = FaultSite(g_idx, pin, s.net, s.value)
            if branch in present:
                uf.union(s, branch)

    first_of_class: dict = {}
    mapping: dict[FaultSite, FaultSite] = {}
    for s in sites:
        root = uf.find(s)
        rep = first_of_class.setdefault(root, s)
        mapping[s] = rep
    reps = [s for s in sites if mapping[s] is s]
    return reps, mapping
