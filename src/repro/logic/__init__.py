"""logic subpackage."""
