"""Fault-parallel stuck-at fault simulation with GENTEST-style verdicts.

The paper's Section-5 pipeline starts with a fault simulation of the entire
controller-datapath system under pseudorandom stimulus.  This module
provides that step for an arbitrary netlist, fault list and stimulus.
Every per-fault simulator resolves its injection against one shared
:class:`~repro.logic.simulator.CompiledNetlist`, and the per-fault loop of
:func:`fault_simulate` can fan out across processes (``n_jobs``) with
bit-identical results.

Verdicts mirror what the paper reports about the GENTEST simulator [10]:

* ``DETECTED``  -- some observed output differs (both values known) in some
  pattern at some cycle;
* ``POTENTIAL`` -- never definitely detected, but at some point the faulty
  machine's output was X while the fault-free value was known (GENTEST's
  "potentially detected");
* ``UNDETECTED`` -- outputs matched everywhere.

A *stimulus* is any object with ``n_patterns``, ``n_cycles`` and an
``apply(sim, cycle)`` method that drives the primary inputs for the given
cycle.  Observation happens after ``settle()`` each cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..core.checkpoint import CampaignJournal, fault_key
from ..core.integrity import (
    DEFAULT_AUDIT_RATE,
    DEFAULT_EVENTSIM_CHECKS,
    IntegrityGuard,
    IntegrityViolation,
    select_audit,
)
from ..core.parallel import ParallelExecutor, RunReport
from ..netlist.netlist import Netlist
from ..store.cache import CampaignStore, StageProvenance, StageTimer, clean_campaign
from . import values as V
from .faults import FaultSite
from .simulator import CycleSimulator, compile_netlist


class Stimulus(Protocol):
    """Drives primary inputs of a simulator, one cycle at a time."""

    n_patterns: int
    n_cycles: int

    def apply(self, sim: CycleSimulator, cycle: int) -> None: ...


class Verdict(enum.Enum):
    DETECTED = "detected"
    POTENTIAL = "potentially_detected"
    UNDETECTED = "undetected"


@dataclass
class FaultSimResult:
    """Outcome of a serial fault simulation run."""

    verdicts: dict[FaultSite, Verdict]
    detect_cycle: dict[FaultSite, int] = field(default_factory=dict)
    #: resilience summary of the fan-out (None for fully resumed runs)
    campaign: RunReport | None = None

    def by_verdict(self, verdict: Verdict) -> list[FaultSite]:
        return [f for f, v in self.verdicts.items() if v is verdict]

    def coverage(self) -> float:
        """Fraction of faults definitely detected."""
        if not self.verdicts:
            return 0.0
        hits = sum(1 for v in self.verdicts.values() if v is Verdict.DETECTED)
        return hits / len(self.verdicts)


def run_golden(
    netlist: Netlist, stimulus: Stimulus, observe: list[int]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Simulate fault-free; return per-cycle stacked (zero, one) planes.

    Each list entry holds two arrays of shape ``(len(observe), words)``.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns)
    trace = []
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        trace.append((sim.Z[observe].copy(), sim.O[observe].copy()))
        sim.latch()
    return trace


def simulate_one_fault(
    netlist: Netlist,
    fault: FaultSite,
    stimulus: Stimulus,
    observe: list[int],
    golden: list[tuple[np.ndarray, np.ndarray]],
    valid_masks: list[np.ndarray] | None = None,
) -> tuple[Verdict, int]:
    """Simulate a single fault against a recorded golden trace.

    ``valid_masks`` optionally restricts comparison to certain patterns per
    cycle (the tester's sampling schedule -- e.g. only once the fault-free
    machine has reached HOLD).  Returns the verdict and the first cycle of
    definite detection (or -1).  Aborts once definitely detected.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns, faults=[fault])
    potential = False
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        gz, go = golden[cycle]
        fz = sim.Z[observe]
        fo = sim.O[observe]
        diff = (gz & fo) | (go & fz)
        maybe = (gz | go) & ~(fz | fo)
        if valid_masks is not None:
            diff = diff & valid_masks[cycle]
            maybe = maybe & valid_masks[cycle]
        if diff.any():
            return Verdict.DETECTED, cycle
        if not potential and maybe.any():
            potential = True
        sim.latch()
    return (Verdict.POTENTIAL if potential else Verdict.UNDETECTED), -1


class _TiledSim:
    """Drive adapter replicating one stimulus across fault blocks.

    Presents the ``n_patterns`` of the original stimulus while tiling every
    drive across the ``n_blocks`` pattern blocks of a wide block-parallel
    simulator, so any :class:`Stimulus` works with the batched engine
    unmodified.
    """

    def __init__(self, sim: CycleSimulator, n_patterns: int, n_blocks: int):
        self._sim = sim
        self._reps = n_blocks
        self.n_patterns = n_patterns
        self.words = V.num_words(n_patterns)
        self.mask = V.tail_mask(n_patterns)

    def drive_words(self, net: int, zero: np.ndarray, one: np.ndarray) -> None:
        self._sim.drive_words(
            net,
            np.tile(zero & self.mask, self._reps),
            np.tile(one & self.mask, self._reps),
        )

    def drive(self, net: int, bits) -> None:
        one = V.pack_bits(np.asarray(bits, dtype=np.uint8))
        self.drive_words(net, ~one & self.mask, one & self.mask)

    def drive_const(self, net: int, value: int) -> None:
        zeros = np.zeros(self.words, dtype=self.mask.dtype)
        if value:
            self.drive_words(net, zeros, self.mask)
        else:
            self.drive_words(net, self.mask, zeros)

    def drive_bus(self, nets: list[int], words) -> None:
        vals = np.asarray(words, dtype=np.int64)
        for i, net in enumerate(nets):
            self.drive(net, (vals >> i) & 1)


def _fault_chunk_worker(context, chunk: list[FaultSite]) -> list[tuple[Verdict, int]]:
    """Simulate a chunk of faults in one block-parallel pass (pickles).

    Fault ``i`` of the chunk owns pattern block ``i`` of a simulator that is
    ``len(chunk)`` times wider than the stimulus; its stem/poison forces are
    confined to that block.  Bit positions are independent simulations, so
    every block reproduces the standalone faulted run bit-for-bit while the
    per-cycle numpy work is shared by the whole chunk.
    """
    netlist, stimulus, observe, golden, valid_masks = context
    if len(chunk) == 1 or stimulus.n_patterns % V.WORD_BITS:
        return [
            simulate_one_fault(netlist, f, stimulus, observe, golden, valid_masks)
            for f in chunk
        ]
    n_obs = len(observe)
    wpb = stimulus.n_patterns // V.WORD_BITS  # words per fault block
    n_blocks = len(chunk)
    blocks = [(i * wpb, (i + 1) * wpb) for i in range(n_blocks)]
    sim = CycleSimulator(
        netlist,
        n_blocks * stimulus.n_patterns,
        faults=list(chunk),
        fault_blocks=blocks,
    )
    tiled = _TiledSim(sim, stimulus.n_patterns, n_blocks)
    detect_cycle = np.full(n_blocks, -1, dtype=np.int64)
    potential = np.zeros(n_blocks, dtype=bool)
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(tiled, cycle)
        sim.settle()
        gz, go = golden[cycle]
        gz = np.tile(gz, (1, n_blocks))
        go = np.tile(go, (1, n_blocks))
        fz = sim.Z[observe]
        fo = sim.O[observe]
        diff = (gz & fo) | (go & fz)
        maybe = (gz | go) & ~(fz | fo)
        if valid_masks is not None:
            vm = np.tile(valid_masks[cycle], n_blocks)
            diff = diff & vm
            maybe = maybe & vm
        live = detect_cycle < 0
        hit = diff.reshape(n_obs, n_blocks, wpb).any(axis=(0, 2))
        detect_cycle[live & hit] = cycle
        live &= ~hit
        if not live.any():
            break
        potential |= live & maybe.reshape(n_obs, n_blocks, wpb).any(axis=(0, 2))
        sim.latch()
    out: list[tuple[Verdict, int]] = []
    for i in range(n_blocks):
        if detect_cycle[i] >= 0:
            out.append((Verdict.DETECTED, int(detect_cycle[i])))
        elif potential[i]:
            out.append((Verdict.POTENTIAL, -1))
        else:
            out.append((Verdict.UNDETECTED, -1))
    return out


def fault_simulate(
    netlist: Netlist,
    faults: list[FaultSite],
    stimulus: Stimulus,
    observe: list[int] | None = None,
    valid_masks: list[np.ndarray] | None = None,
    n_jobs: int = 1,
    batch_faults: int = 32,
    timeout: float | None = None,
    max_retries: int = 2,
    checkpoint: CampaignJournal | None = None,
    audit_rate: float = DEFAULT_AUDIT_RATE,
    strict: bool = False,
    chaos=None,
    eventsim_checks: int = DEFAULT_EVENTSIM_CHECKS,
    store: CampaignStore | None = None,
    store_key: str | None = None,
) -> FaultSimResult:
    """Fault simulation of ``faults`` under ``stimulus``.

    Faults are processed in block-parallel chunks of ``batch_faults`` (one
    wide simulator per chunk -- see :func:`_fault_chunk_worker`), and the
    chunks fan out across ``n_jobs`` worker processes.  Verdicts are
    bit-identical for every combination of the two knobs -- and for any
    interruption point of a checkpointed campaign, because every per-fault
    verdict is deterministic and independent.

    A hash-selected ``audit_rate`` fraction of the final verdicts is then
    re-derived through the serial per-fault simulator (an independent
    code path from the block-parallel workers), with the first few
    audited faults additionally cross-checked against the scalar
    event-driven engine.  A divergence is flagged as an
    :class:`~repro.core.integrity.IntegrityViolation` on the campaign
    report, and the fault's verdict falls back to the trusted serial
    reference (or, with ``strict=True``, the campaign aborts).

    Args:
        netlist: the design (controller-datapath system in the pipeline).
        faults: collapsed fault list to grade.
        stimulus: input driver (see :class:`Stimulus`).
        observe: nets to compare (defaults to the netlist's primary outputs).
        valid_masks: optional per-cycle pattern masks restricting when the
            tester samples the outputs.
        n_jobs: worker processes; 1 runs serially, negative uses every core.
        batch_faults: faults per block-parallel pass; 1 disables batching
            and simulates one fault per (cache-compiled) simulator.
        timeout: per-chunk seconds before a hung worker is killed and the
            chunk retried (see :class:`~repro.core.parallel.ParallelExecutor`).
        max_retries: extra attempts per failed/timed-out chunk.
        checkpoint: optional campaign journal; faults already journaled are
            skipped and replayed from disk, newly simulated faults are
            journaled as their chunk completes.
        audit_rate: fraction of faults re-simulated serially (0 disables
            the audit); selection is a pure hash of the fault key, so the
            audit set is identical for any job count or resume point.
        strict: abort on the first integrity violation instead of
            quarantining the fault and continuing.
        chaos: optional :class:`~repro.testing.chaos.ChaosEngine`
            injecting worker crashes/hangs and verdict bit-flips (test
            and CI use only).
        eventsim_checks: cap on audited faults also replayed through the
            event-driven reference engine (it is far slower per pattern).
        store: optional persistent campaign store; a complete cached
            stage result is replayed bit-identically (skipping simulation
            *and* audit -- the result was audited before publication),
            and a freshly computed clean campaign is published back.
        store_key: this campaign's canonical stage key (computed by the
            caller from the netlist/stimulus/config fingerprints -- see
            :mod:`repro.store.fingerprint`); required for ``store`` use.
    """
    if observe is None:
        observe = list(netlist.outputs)
    keys = {f: fault_key(f) for f in faults}

    # Persistent-store fast path: a complete cached verdict map replays
    # bit-identically without any simulation.  Partial/corrupt/foreign
    # payloads degrade to a miss (corruption is flagged by the store).
    if store is not None and store_key is not None:
        with StageTimer() as timer:
            cached = store.lookup("faultsim", store_key)
        if cached is not None and set(cached.get("verdicts", ())) == set(keys.values()):
            row = store.artifacts.row(store_key)
            store.record(
                StageProvenance(
                    stage="faultsim",
                    key=store_key,
                    hit=True,
                    wall_s=timer.wall_s,
                    saved_s=row.wall_s if row is not None else 0.0,
                )
            )
            result = FaultSimResult(
                verdicts={}, campaign=RunReport(n_items=len(faults))
            )
            for fault in faults:
                raw_verdict, cycle = cached["verdicts"][keys[fault]]
                verdict = Verdict(raw_verdict)
                result.verdicts[fault] = verdict
                if verdict is Verdict.DETECTED:
                    result.detect_cycle[fault] = int(cycle)
            return result

    stage_timer = StageTimer().__enter__()
    done: dict[FaultSite, tuple[Verdict, int]] = {}
    todo = list(faults)
    if checkpoint is not None:
        for fault in faults:
            entry = checkpoint.done.get(keys[fault])
            if entry is not None:
                done[fault] = (Verdict(entry[0]), int(entry[1]))
        todo = [f for f in faults if f not in done]
    outcomes_by_fault: dict[FaultSite, tuple[Verdict, int]] = dict(done)
    report = RunReport(n_items=len(faults), resumed=len(done))
    audit_keys = set(select_audit([keys[f] for f in faults], audit_rate))
    if chaos is not None:
        chaos.set_flip_targets(sorted(audit_keys))
    golden: list | None = None
    if todo:
        compile_netlist(netlist)  # warm the shared compile before fanning out
        golden = run_golden(netlist, stimulus, observe)
        context = (netlist, stimulus, observe, golden, valid_masks)
        batch_faults = max(1, batch_faults)
        chunks = [
            list(todo[i : i + batch_faults]) for i in range(0, len(todo), batch_faults)
        ]

        def _journal_chunk(items, results) -> None:
            for chunk, chunk_out in zip(items, results):
                for fault, (verdict, cycle) in zip(chunk, chunk_out):
                    if chaos is not None:
                        verdict, cycle = chaos.tamper_verdict(
                            keys[fault], (verdict, cycle)
                        )
                    outcomes_by_fault[fault] = (verdict, cycle)
                    if checkpoint is not None:
                        checkpoint.record(keys[fault], [verdict.value, cycle])

        worker, run_context = _fault_chunk_worker, context
        if chaos is not None:
            worker, run_context = chaos.wrap(worker, run_context)
        executor = ParallelExecutor(
            n_jobs, chunk_size=1, timeout=timeout, max_retries=max_retries
        )
        executor.run(worker, chunks, run_context, on_chunk=_journal_chunk)
        assert executor.last_report is not None
        report = executor.last_report
        # the executor counted fault-chunks; report in faults
        report.n_items = len(faults)
        report.completed = len(todo)
        report.resumed = len(done)

    # Differential audit: re-derive the hash-selected subset through the
    # serial per-fault path and compare against the campaign's verdicts.
    guard = IntegrityGuard(strict=strict)
    audited = [f for f in faults if keys[f] in audit_keys]
    if audited:
        if golden is None:  # fully resumed run never built the reference
            compile_netlist(netlist)
            golden = run_golden(netlist, stimulus, observe)
        for fault in audited:
            reference = simulate_one_fault(
                netlist, fault, stimulus, observe, golden, valid_masks
            )
            got = outcomes_by_fault[fault]
            if got != reference:
                guard.flag(
                    IntegrityViolation(
                        check="faultsim-differential",
                        fault=keys[fault],
                        site=fault.describe(netlist),
                        detail=(
                            "campaign verdict diverges from the serial "
                            "reference simulation; quarantined to the "
                            "reference"
                        ),
                        cycle=max(got[1], reference[1]),
                        expected=f"{reference[0].value}@{reference[1]}",
                        actual=f"{got[0].value}@{got[1]}",
                    )
                )
                outcomes_by_fault[fault] = reference
        # Spot-check the compiled engine itself against the scalar
        # event-driven reference on a capped handful of audited faults.
        from .eventsim import crosscheck_compiled

        for fault in sorted(audited, key=lambda f: keys[f])[: max(0, eventsim_checks)]:
            divergent = crosscheck_compiled(netlist, stimulus, observe, fault)
            if divergent >= 0:
                guard.flag(
                    IntegrityViolation(
                        check="eventsim-crosscheck",
                        fault=keys[fault],
                        site=fault.describe(netlist),
                        detail=(
                            "compiled simulator diverges from the "
                            "event-driven reference on an observed net"
                        ),
                        cycle=divergent,
                    )
                )
    guard.attach(report, audited=len(audited))
    stage_timer.__exit__()
    if store is not None and store_key is not None:
        # Publish only clean campaigns: quarantined/audit-corrected results
        # must never be served stale from a warm cache.  A fully journal-
        # resumed campaign publishes too (the checkpoint layer's results
        # graduate into the durable store on completion).
        published = False
        if clean_campaign(report):
            published = store.publish(
                "faultsim",
                store_key,
                {
                    "verdicts": {
                        keys[f]: [outcomes_by_fault[f][0].value, outcomes_by_fault[f][1]]
                        for f in faults
                    }
                },
                design=netlist.name,
                meta={"faults": len(faults), "patterns": stimulus.n_patterns},
                wall_s=stage_timer.wall_s,
            )
            if published and checkpoint is not None and chaos is None:
                checkpoint.retire()
        store.record(
            StageProvenance(
                stage="faultsim",
                key=store_key,
                hit=False,
                wall_s=stage_timer.wall_s,
                published=published,
            )
        )
    result = FaultSimResult(verdicts={}, campaign=report)
    for fault in faults:
        verdict, cycle = outcomes_by_fault[fault]
        result.verdicts[fault] = verdict
        if verdict is Verdict.DETECTED:
            result.detect_cycle[fault] = cycle
    return result
