"""Serial stuck-at fault simulation with GENTEST-style verdicts.

The paper's Section-5 pipeline starts with a fault simulation of the entire
controller-datapath system under pseudorandom stimulus.  This module
provides that step for an arbitrary netlist, fault list and stimulus.

Verdicts mirror what the paper reports about the GENTEST simulator [10]:

* ``DETECTED``  -- some observed output differs (both values known) in some
  pattern at some cycle;
* ``POTENTIAL`` -- never definitely detected, but at some point the faulty
  machine's output was X while the fault-free value was known (GENTEST's
  "potentially detected");
* ``UNDETECTED`` -- outputs matched everywhere.

A *stimulus* is any object with ``n_patterns``, ``n_cycles`` and an
``apply(sim, cycle)`` method that drives the primary inputs for the given
cycle.  Observation happens after ``settle()`` each cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..netlist.netlist import Netlist
from .faults import FaultSite
from .simulator import CycleSimulator


class Stimulus(Protocol):
    """Drives primary inputs of a simulator, one cycle at a time."""

    n_patterns: int
    n_cycles: int

    def apply(self, sim: CycleSimulator, cycle: int) -> None: ...


class Verdict(enum.Enum):
    DETECTED = "detected"
    POTENTIAL = "potentially_detected"
    UNDETECTED = "undetected"


@dataclass
class FaultSimResult:
    """Outcome of a serial fault simulation run."""

    verdicts: dict[FaultSite, Verdict]
    detect_cycle: dict[FaultSite, int] = field(default_factory=dict)

    def by_verdict(self, verdict: Verdict) -> list[FaultSite]:
        return [f for f, v in self.verdicts.items() if v is verdict]

    def coverage(self) -> float:
        """Fraction of faults definitely detected."""
        if not self.verdicts:
            return 0.0
        hits = sum(1 for v in self.verdicts.values() if v is Verdict.DETECTED)
        return hits / len(self.verdicts)


def run_golden(
    netlist: Netlist, stimulus: Stimulus, observe: list[int]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Simulate fault-free; return per-cycle stacked (zero, one) planes.

    Each list entry holds two arrays of shape ``(len(observe), words)``.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns)
    trace = []
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        trace.append((sim.Z[observe].copy(), sim.O[observe].copy()))
        sim.latch()
    return trace


def simulate_one_fault(
    netlist: Netlist,
    fault: FaultSite,
    stimulus: Stimulus,
    observe: list[int],
    golden: list[tuple[np.ndarray, np.ndarray]],
    valid_masks: list[np.ndarray] | None = None,
) -> tuple[Verdict, int]:
    """Simulate a single fault against a recorded golden trace.

    ``valid_masks`` optionally restricts comparison to certain patterns per
    cycle (the tester's sampling schedule -- e.g. only once the fault-free
    machine has reached HOLD).  Returns the verdict and the first cycle of
    definite detection (or -1).  Aborts once definitely detected.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns, faults=[fault])
    potential = False
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        gz, go = golden[cycle]
        fz = sim.Z[observe]
        fo = sim.O[observe]
        diff = (gz & fo) | (go & fz)
        maybe = (gz | go) & ~(fz | fo)
        if valid_masks is not None:
            diff = diff & valid_masks[cycle]
            maybe = maybe & valid_masks[cycle]
        if diff.any():
            return Verdict.DETECTED, cycle
        if not potential and maybe.any():
            potential = True
        sim.latch()
    return (Verdict.POTENTIAL if potential else Verdict.UNDETECTED), -1


def fault_simulate(
    netlist: Netlist,
    faults: list[FaultSite],
    stimulus: Stimulus,
    observe: list[int] | None = None,
    valid_masks: list[np.ndarray] | None = None,
) -> FaultSimResult:
    """Serial fault simulation of ``faults`` under ``stimulus``.

    Args:
        netlist: the design (controller-datapath system in the pipeline).
        faults: collapsed fault list to grade.
        stimulus: input driver (see :class:`Stimulus`).
        observe: nets to compare (defaults to the netlist's primary outputs).
        valid_masks: optional per-cycle pattern masks restricting when the
            tester samples the outputs.
    """
    if observe is None:
        observe = list(netlist.outputs)
    golden = run_golden(netlist, stimulus, observe)
    result = FaultSimResult(verdicts={})
    for fault in faults:
        verdict, cycle = simulate_one_fault(
            netlist, fault, stimulus, observe, golden, valid_masks
        )
        result.verdicts[fault] = verdict
        if verdict is Verdict.DETECTED:
            result.detect_cycle[fault] = cycle
    return result
