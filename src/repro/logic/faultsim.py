"""Fault-parallel stuck-at fault simulation with GENTEST-style verdicts.

The paper's Section-5 pipeline starts with a fault simulation of the entire
controller-datapath system under pseudorandom stimulus.  This module
provides that step for an arbitrary netlist, fault list and stimulus.
Every per-fault simulator resolves its injection against one shared
:class:`~repro.logic.simulator.CompiledNetlist`, and the per-fault loop of
:func:`fault_simulate` can fan out across processes (``n_jobs``) with
bit-identical results.

Verdicts mirror what the paper reports about the GENTEST simulator [10]:

* ``DETECTED``  -- some observed output differs (both values known) in some
  pattern at some cycle;
* ``POTENTIAL`` -- never definitely detected, but at some point the faulty
  machine's output was X while the fault-free value was known (GENTEST's
  "potentially detected");
* ``UNDETECTED`` -- outputs matched everywhere.

A *stimulus* is any object with ``n_patterns``, ``n_cycles`` and an
``apply(sim, cycle)`` method that drives the primary inputs for the given
cycle.  Observation happens after ``settle()`` each cycle.

Campaigns default to the *cone-restricted differential* engine
(``cone_sim=True``): the fault-free run records its full per-cycle net
planes once (:class:`GoldenTrace`), each chunk of faults evaluates only
the gates in the union of its sequential fanout cones
(:mod:`repro.logic.cones`) while every other net is replayed from the
golden trace, faults whose cone misses the observed outputs are reported
without simulating, and *fault-effect death pruning* retires a fault the
moment its divergence frontier empties and its site can never be excited
again.  All of it is a pure performance lever -- verdicts are
bit-identical to the serial and block-parallel paths (see
docs/performance.md for the soundness argument; ``tests/test_cones.py``
and the differential audit enforce it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..core.checkpoint import CampaignJournal, fault_key
from ..core.integrity import (
    DEFAULT_AUDIT_RATE,
    DEFAULT_DEATH_AUDIT_CHECKS,
    DEFAULT_EVENTSIM_CHECKS,
    IntegrityGuard,
    IntegrityViolation,
    audit_fraction,
    select_audit,
)
from ..core.parallel import ParallelExecutor, RunReport, resolve_n_jobs
from ..netlist.netlist import Netlist
from ..store.cache import CampaignStore, StageProvenance, StageTimer, clean_campaign
from . import values as V
from .cones import chunk_by_cone, compute_cones
from .faults import FaultSite
from .simulator import CompiledNetlist, CycleSimulator, _Group, compile_netlist


#: width cap (in 64-bit words) of one cone-engine simulator; bounds chunk
#: auto-widening so a huge fault universe cannot blow up worker memory.
_CONE_MAX_WORDS = 8192


class Stimulus(Protocol):
    """Drives primary inputs of a simulator, one cycle at a time."""

    n_patterns: int
    n_cycles: int

    def apply(self, sim: CycleSimulator, cycle: int) -> None: ...


class Verdict(enum.Enum):
    DETECTED = "detected"
    POTENTIAL = "potentially_detected"
    UNDETECTED = "undetected"


@dataclass
class ConeStats:
    """Work-avoidance accounting of a cone-restricted campaign.

    ``cycles``/``gate_evals`` count what the cone engine actually
    simulated; ``cycles_full``/``gate_evals_full`` count what the
    unrestricted block-parallel engine would have simulated for the same
    chunks (it evaluates every gate for every fault block each cycle and
    only stops early once every fault in a chunk is detected).  Gate
    counts are block-weighted -- one unit is one gate evaluated for one
    fault's pattern block in one cycle -- so block retirement (a detected
    or dead fault's block compacted out of the wide simulator) shows up
    in the fraction alongside cone restriction.  The counterfactual is
    exact: both engines detect at identical cycles, so a chunk with any
    non-detected fault would have run the full stimulus at full width.
    """

    faults: int = 0
    #: faults whose cone misses every observed net (no simulation at all)
    unobservable: int = 0
    #: faults retired early by fault-effect death pruning
    dead: int = 0
    cycles: int = 0
    cycles_full: int = 0
    gate_evals: int = 0
    gate_evals_full: int = 0

    def absorb(self, raw: dict) -> None:
        """Fold one chunk's raw stats dict into the campaign totals."""
        self.faults += raw.get("faults", 0)
        self.unobservable += raw.get("unobservable", 0)
        self.dead += len(raw.get("dead", ()))
        self.cycles += raw.get("cycles", 0)
        self.cycles_full += raw.get("cycles_full", 0)
        self.gate_evals += raw.get("gate_evals", 0)
        self.gate_evals_full += raw.get("gate_evals_full", 0)

    @property
    def evaluated_gate_fraction(self) -> float:
        """Gate evaluations performed / gate evaluations avoided-from."""
        return self.gate_evals / self.gate_evals_full if self.gate_evals_full else 1.0

    @property
    def early_death_rate(self) -> float:
        """Fraction of faults pruned structurally or by frontier death."""
        if not self.faults:
            return 0.0
        return (self.dead + self.unobservable) / self.faults

    def to_json_dict(self) -> dict:
        return {
            "faults": self.faults,
            "unobservable": self.unobservable,
            "dead": self.dead,
            "cycles": self.cycles,
            "cycles_full": self.cycles_full,
            "gate_evals": self.gate_evals,
            "gate_evals_full": self.gate_evals_full,
            "evaluated_gate_fraction": self.evaluated_gate_fraction,
            "early_death_rate": self.early_death_rate,
        }


@dataclass
class FaultSimResult:
    """Outcome of a serial fault simulation run."""

    verdicts: dict[FaultSite, Verdict]
    detect_cycle: dict[FaultSite, int] = field(default_factory=dict)
    #: resilience summary of the fan-out (None for fully resumed runs)
    campaign: RunReport | None = None
    #: cone-engine work accounting (None when the cone path did not run --
    #: store replays, fully resumed campaigns, ``cone_sim=False``);
    #: never part of the published store payload, so fingerprinted
    #: results are byte-identical with the cone engine on or off.
    cone: ConeStats | None = None

    def by_verdict(self, verdict: Verdict) -> list[FaultSite]:
        return [f for f, v in self.verdicts.items() if v is verdict]

    def coverage(self) -> float:
        """Fraction of faults definitely detected."""
        if not self.verdicts:
            return 0.0
        hits = sum(1 for v in self.verdicts.values() if v is Verdict.DETECTED)
        return hits / len(self.verdicts)


@dataclass
class GoldenTrace:
    """Fault-free reference trace with optional full per-cycle planes.

    ``observed`` holds the per-cycle ``(zero, one)`` planes over the
    observed nets; indexing and ``len`` delegate to it, so a
    ``GoldenTrace`` is a drop-in for the plain list :func:`run_golden`
    returns without ``full``.  ``planes`` holds one full
    ``(2, n_rows, words)`` state snapshot per cycle -- every net row,
    both value planes -- recorded once per campaign so the
    cone-restricted workers can replay all non-cone nets (including the
    driven primary inputs and the fault-free register states) instead of
    recomputing them.
    """

    observed: list[tuple[np.ndarray, np.ndarray]]
    planes: list[np.ndarray] | None = None

    def __getitem__(self, cycle: int) -> tuple[np.ndarray, np.ndarray]:
        return self.observed[cycle]

    def __len__(self) -> int:
        return len(self.observed)


def run_golden(
    netlist: Netlist, stimulus: Stimulus, observe: list[int], *, full: bool = False
):
    """Simulate fault-free; return per-cycle stacked (zero, one) planes.

    Each entry holds two arrays of shape ``(len(observe), words)``.  With
    ``full=True`` the result is a :class:`GoldenTrace` that additionally
    snapshots the complete net planes each cycle (the cone-restricted
    engine's shared reference); otherwise the plain observed list is
    returned, as before.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns)
    observed = []
    planes: list[np.ndarray] | None = [] if full else None
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        observed.append((sim.Z[observe].copy(), sim.O[observe].copy()))
        if planes is not None:
            planes.append(sim.snapshot_planes())
        sim.latch()
    if full:
        return GoldenTrace(observed, planes)
    return observed


def simulate_one_fault(
    netlist: Netlist,
    fault: FaultSite,
    stimulus: Stimulus,
    observe: list[int],
    golden: list[tuple[np.ndarray, np.ndarray]],
    valid_masks: list[np.ndarray] | None = None,
) -> tuple[Verdict, int]:
    """Simulate a single fault against a recorded golden trace.

    ``valid_masks`` optionally restricts comparison to certain patterns per
    cycle (the tester's sampling schedule -- e.g. only once the fault-free
    machine has reached HOLD).  Returns the verdict and the first cycle of
    definite detection (or -1).  Aborts once definitely detected.
    """
    sim = CycleSimulator(netlist, stimulus.n_patterns, faults=[fault])
    potential = False
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        gz, go = golden[cycle]
        fz = sim.Z[observe]
        fo = sim.O[observe]
        diff = (gz & fo) | (go & fz)
        maybe = (gz | go) & ~(fz | fo)
        if valid_masks is not None:
            diff = diff & valid_masks[cycle]
            maybe = maybe & valid_masks[cycle]
        if diff.any():
            return Verdict.DETECTED, cycle
        if not potential and maybe.any():
            potential = True
        sim.latch()
    return (Verdict.POTENTIAL if potential else Verdict.UNDETECTED), -1


class _TiledSim:
    """Drive adapter replicating one stimulus across fault blocks.

    Presents the ``n_patterns`` of the original stimulus while tiling every
    drive across the ``n_blocks`` pattern blocks of a wide block-parallel
    simulator, so any :class:`Stimulus` works with the batched engine
    unmodified.
    """

    def __init__(self, sim: CycleSimulator, n_patterns: int, n_blocks: int):
        self._sim = sim
        self._reps = n_blocks
        self.n_patterns = n_patterns
        self.words = V.num_words(n_patterns)
        self.mask = V.tail_mask(n_patterns)

    def drive_words(self, net: int, zero: np.ndarray, one: np.ndarray) -> None:
        self._sim.drive_words(
            net,
            np.tile(zero & self.mask, self._reps),
            np.tile(one & self.mask, self._reps),
        )

    def drive(self, net: int, bits) -> None:
        one = V.pack_bits(np.asarray(bits, dtype=np.uint8))
        self.drive_words(net, ~one & self.mask, one & self.mask)

    def drive_const(self, net: int, value: int) -> None:
        zeros = np.zeros(self.words, dtype=self.mask.dtype)
        if value:
            self.drive_words(net, zeros, self.mask)
        else:
            self.drive_words(net, self.mask, zeros)

    def drive_bus(self, nets: list[int], words) -> None:
        """Drive a bus (LSB first), tiled across every fault block.

        Mirrors :meth:`CycleSimulator.drive_bus`'s range guard: data that
        does not fit the bus would silently alias to its low bits in
        every block, so it is rejected loudly instead.
        """
        vals = np.asarray(words, dtype=np.int64)
        if vals.size and (vals.min() < 0 or vals.max() >> len(nets)):
            raise ValueError(
                f"bus value out of range for {len(nets)}-bit bus: "
                f"min={vals.min()}, max={vals.max()}"
            )
        for i, net in enumerate(nets):
            self.drive(net, (vals >> i) & 1)


class _ChunkOutcomes(list):
    """A chunk's (verdict, cycle) list plus out-of-band engine stats.

    Iteration and indexing behave exactly like the plain list the legacy
    worker returned (``tests/test_integrity.py`` wraps the worker and
    re-emits a plain list -- stats are optional everywhere).  ``stats``
    rides along as an instance attribute, which a list subclass pickles
    intact across the process pool.
    """

    def __init__(self, outcomes=(), stats: dict | None = None):
        super().__init__(outcomes)
        self.stats = stats


def _restrict_to_cone(compiled: CompiledNetlist, union_gates: set[int]):
    """Sub-schedule of the compiled groups covering only ``union_gates``.

    Returns ``(sub_levels, seq_subs, row_maps)``: per-level combinational
    sub-groups aligned 1:1 with ``compiled.levels`` (possibly empty
    lists, so stem re-force points keep their level indices), the
    restricted sequential groups, and per-``gid`` full-row -> sub-row
    maps used to translate branch-fault poison coordinates.  Sub-groups
    keep their parent's ``gid``: the simulator's poison lookup works
    unchanged once its rows are remapped.
    """
    row_maps: dict[int, dict[int, int]] = {}

    def select(group: _Group) -> _Group | None:
        sel = [i for i, g in enumerate(group.gate_idx) if int(g) in union_gates]
        if not sel:
            return None
        row_maps[group.gid] = {full: sub for sub, full in enumerate(sel)}
        idx = np.array(sel, dtype=np.int64)
        return _Group(
            gtype=group.gtype,
            gate_idx=group.gate_idx[idx],
            outputs=group.outputs[idx],
            inputs=group.inputs[idx],
            gid=group.gid,
            dffe_rows=None if group.dffe_rows is None else group.dffe_rows[idx],
        )

    sub_levels = [
        [s for s in (select(g) for g in level) if s is not None]
        for level in compiled.levels
    ]
    seq_subs = [s for s in (select(g) for g in compiled.seq_groups) if s is not None]
    return sub_levels, seq_subs, row_maps


def _excite_from(planes: list[np.ndarray], fault: FaultSite) -> np.ndarray:
    """Per-cycle bool: can the golden machine excite ``fault`` at >= t?

    The fault forces value ``v`` at its site net; it is *excited* in a
    cycle when any pattern's fault-free site value is not known-``v``
    (an X counts -- it could differ on silicon).  ``out[t]`` is True when
    any cycle ``t' >= t`` is excited.  The death check runs after the
    clock edge of cycle ``t`` and indexes ``out[t + 1]``: the state
    comparison has already absorbed anything cycle ``t``'s forces did
    (including a poisoned flip-flop pin latched at that edge), so only
    excitation from the next cycle onward can re-create divergence.
    """
    n_cycles = len(planes)
    out = np.empty(n_cycles, dtype=bool)
    pending = False
    for t in range(n_cycles - 1, -1, -1):
        known = planes[t][1 if fault.value else 0, fault.net]
        pending = pending or bool((~known).any())
        out[t] = pending
    return out


class _ConeSim:
    """One wide cone-restricted simulator over a set of live faults.

    Owns everything derived from the *current* fault set: the block-wise
    :class:`CycleSimulator`, the restricted evaluation schedule, the
    golden-boundary row set and the preallocated observation buffers.
    The chunk worker rebuilds a narrower instance whenever enough blocks
    retire (see :func:`_cone_chunk_worker`).
    """

    def __init__(
        self,
        netlist: Netlist,
        compiled: CompiledNetlist,
        faults: list[FaultSite],
        cones,
        observe: list[int],
        wpb: int,
        has_masks: bool,
        count_toggles: bool = False,
    ):
        self.n_blocks = n_b = len(faults)
        self.wpb = wpb
        blocks = [(b * wpb, (b + 1) * wpb) for b in range(n_b)]
        # ``count_toggles`` arms the per-block counters for the Monte-Carlo
        # power kernel: the restricted schedule never calls ``settle()``
        # (the power kernel counts its union-net toggles itself), but
        # ``latch_groups`` accumulates per-block DFFE load events.
        self.sim = sim = CycleSimulator(
            netlist,
            n_b * wpb * V.WORD_BITS,
            faults=faults,
            fault_blocks=blocks,
            count_toggles=count_toggles,
            toggle_blocks=n_b if count_toggles else None,
        )
        union_gates = set().union(*(cones[f].gates for f in faults))
        union_nets = set().union(*(cones[f].nets for f in faults))
        self.union_nets = union_nets
        sub_levels, seq_subs, row_maps = _restrict_to_cone(compiled, union_gates)
        self.seq_subs = seq_subs
        for gid, hits in sim._group_poison.items():
            remap = row_maps[gid]
            sim._group_poison[gid] = [
                (remap[row], pin, sl, val) for row, pin, sl, val in hits
            ]
        # Collapse the levelized sub-schedule, keeping every stem re-force
        # point at its original position relative to the evaluations.
        self.schedule = schedule = []
        for lvl, subs in enumerate(sub_levels):
            reapply = lvl in sim._stem_levels
            if subs or reapply:
                schedule.append((subs, reapply))
        self.union_evals = sum(
            len(g.gate_idx) for subs, _ in schedule for g in subs
        ) + sum(len(g.gate_idx) for g in seq_subs)

        self.state_rows = state_rows = (
            np.concatenate([g.outputs for g in seq_subs])
            if seq_subs
            else np.empty(0, dtype=np.int64)
        )
        self.obs_sel = np.array(
            [i for i, net in enumerate(observe) if net in union_nets],
            dtype=np.int64,
        )
        self.obs_rows = np.array(
            [observe[int(i)] for i in self.obs_sel], dtype=np.int64
        )
        # Golden-boundary rows: everything the restricted cycle *reads*
        # (sub-group and latch fan-ins, the observed cone nets, every
        # stem site) that it neither computes itself, nor carries in the
        # faulty flip-flop state, nor pinned once as a constant.  Only
        # these rows need a per-cycle refresh from the golden plane; any
        # other row is either rewritten before it is read or never read.
        reads: set[int] = set(self.obs_rows.tolist())
        written: set[int] = set()
        for subs, _ in schedule:
            for g in subs:
                reads.update(g.inputs.ravel().tolist())
                written.update(g.outputs.tolist())
        for g in seq_subs:
            reads.update(g.inputs.ravel().tolist())
        for f in faults:
            if f.is_stem:
                reads.add(f.net)
            else:
                assert f.gate_index is not None
                reads.add(netlist.gates[f.gate_index].output)
        pinned = set(sim._const0.tolist()) | set(sim._const1.tolist())
        ext = reads - written - set(state_rows.tolist()) - pinned
        self.ext_rows = np.array(sorted(ext), dtype=np.int64)
        n_obs = len(self.obs_rows)
        # Preallocated broadcast targets (no per-cycle np.tile churn).
        self.ext_t = np.empty((2, len(self.ext_rows), n_b * wpb), dtype=np.uint64)
        self.gz_t = np.empty((n_obs, n_b * wpb), dtype=np.uint64)
        self.go_t = np.empty_like(self.gz_t)
        self.vm_t = np.empty(n_b * wpb, dtype=np.uint64) if has_masks else None

        # Vectorized stem application: the simulator's ``_apply_stems``
        # walks a python dict of per-block slices -- a few hundred tiny
        # assignments per call once a whole campaign shares one chunk.
        # Precompute flat (row, word-column) scatter indices per forced
        # value; full-word masks are exact because the cone engine only
        # runs when the pattern count is a multiple of the word size.
        stem_idx: dict[int, tuple[list[int], list[np.ndarray]]] = {
            0: ([], []),
            1: ([], []),
        }
        for net, entries in sim._stem.items():
            for sl, val in entries:
                start = 0 if sl.start is None else sl.start
                stop = sim.words if sl.stop is None else sl.stop
                rows, cols = stem_idx[val]
                rows.extend([net] * (stop - start))
                cols.append(np.arange(start, stop, dtype=np.int64))
        self._stem_scatter = {}
        for val, (rows, cols) in stem_idx.items():
            if rows:
                self._stem_scatter[val] = (
                    np.array(rows, dtype=np.int64),
                    np.concatenate(cols),
                )
        # Route every later stem re-force (mid-settle reapply points and
        # the post-latch re-force inside ``latch_groups``) through the
        # scatter-based fast path; the semantics are identical.
        sim._apply_stems = self.apply_stems

    def apply_stems(self) -> None:
        """Equivalent of ``sim._apply_stems()`` in four scatter writes."""
        sim = self.sim
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        hit = self._stem_scatter.get(1)
        if hit is not None:
            rows, cols = hit
            sim.Z[rows, cols] = 0
            sim.O[rows, cols] = ones
        hit = self._stem_scatter.get(0)
        if hit is not None:
            rows, cols = hit
            sim.Z[rows, cols] = ones
            sim.O[rows, cols] = 0

    def run_cycle(self, plane: np.ndarray, state: np.ndarray) -> None:
        """Refresh boundaries, restore faulty state, settle the cone."""
        sim, n_b, wpb = self.sim, self.n_blocks, self.wpb
        ext_rows = self.ext_rows
        self.ext_t.reshape(2, len(ext_rows), n_b, wpb)[:] = plane[:, ext_rows][
            :, :, None, :
        ]
        sim._ZO[:, ext_rows] = self.ext_t
        if len(self.state_rows):
            sim._ZO[:, self.state_rows] = state
        sim._apply_stems()
        for subs, reapply in self.schedule:
            for group in subs:
                z, o = sim._eval_group(group)
                sim.Z[group.outputs] = z
                sim.O[group.outputs] = o
            if reapply:
                sim._apply_stems()

    def observe_diff(self, golden: GoldenTrace, cycle: int, valid_masks):
        """Per-block (definite, maybe) divergence flags on observed nets."""
        n_b, wpb = self.n_blocks, self.wpb
        n_obs = len(self.obs_rows)
        gz, go = golden.observed[cycle]
        self.gz_t.reshape(n_obs, n_b, wpb)[:] = gz[self.obs_sel][:, None, :]
        self.go_t.reshape(n_obs, n_b, wpb)[:] = go[self.obs_sel][:, None, :]
        fz = self.sim.Z[self.obs_rows]
        fo = self.sim.O[self.obs_rows]
        diff = (self.gz_t & fo) | (self.go_t & fz)
        maybe = (self.gz_t | self.go_t) & ~(fz | fo)
        if valid_masks is not None:
            self.vm_t.reshape(n_b, wpb)[:] = valid_masks[cycle][None, :]
            diff &= self.vm_t
            maybe &= self.vm_t
        return (
            diff.reshape(n_obs, n_b, wpb).any(axis=(0, 2)),
            maybe.reshape(n_obs, n_b, wpb).any(axis=(0, 2)),
        )

    def dead_blocks(
        self, plane_next: np.ndarray, candidates: np.ndarray, state: np.ndarray
    ) -> np.ndarray:
        """Candidate blocks whose post-latch state equals the golden machine.

        Divergence persists across cycles only through the cone's
        flip-flops: every combinational net is recomputed each cycle
        from the flip-flop state, the golden-loaded boundary rows and
        the fault forces.  So a block whose just-latched cone state
        matches the fault-free machine (``plane_next`` carries the
        golden post-latch values -- flip-flop rows are untouched by the
        following cycle's settle) -- checked for the candidates' word
        columns only -- will, absent future excitation, track golden
        bit-for-bit forever.
        """
        wpb, rows = self.wpb, self.state_rows
        slab = state.reshape(2, len(rows), self.n_blocks, wpb)[:, :, candidates]
        equal = (slab == plane_next[:, rows][:, :, None, :]).all(axis=(0, 1, 3))
        return candidates[equal]

    def latch(self, state: np.ndarray) -> None:
        self.sim.latch_groups(self.seq_subs)
        if len(self.state_rows):
            state[:] = self.sim._ZO[:, self.state_rows]

    def compact_state(self, state: np.ndarray, old: "_ConeSim", keep: np.ndarray):
        """Re-slice ``old``'s state buffer for this (narrower) rebuild.

        ``keep`` holds the surviving block positions in ``old``'s block
        order.  The new union cone is a subset of the old one, so every
        new state row existed in the old buffer.
        """
        if not len(self.state_rows):
            return np.zeros((2, 0, self.n_blocks * self.wpb), dtype=np.uint64)
        pos = {int(r): i for i, r in enumerate(old.state_rows)}
        sel = np.array([pos[int(r)] for r in self.state_rows], dtype=np.int64)
        slab = state.reshape(2, len(old.state_rows), old.n_blocks, old.wpb)
        return (
            slab[:, sel][:, :, keep]
            .reshape(2, len(self.state_rows), self.n_blocks * self.wpb)
            .copy()
        )


#: retire finished blocks (rebuild a narrower simulator) once at least
#: this many -- and at least a quarter of the current width -- are done.
_CONE_RETIRE_MIN = 4


def _cone_chunk_worker(
    netlist: Netlist,
    stimulus: Stimulus,
    observe: list[int],
    golden: GoldenTrace,
    valid_masks,
    chunk: list[FaultSite],
    cones=None,
) -> _ChunkOutcomes:
    """Cone-restricted differential simulation of one fault chunk.

    Instead of driving the stimulus and evaluating the whole netlist for
    every cycle, each cycle refreshes only the chunk's golden-boundary
    rows from the recorded fault-free planes, overwrites the cone's
    flip-flop rows with the chunk's faulty state, re-applies the stem
    forces, and evaluates only the sub-schedule of gates inside the
    chunk's union cone.  Nets outside a fault's cone provably never
    diverge, so the restricted run is bit-identical to the full one.

    Three prunes ride on top: faults whose cone misses every observed
    net verdict UNDETECTED with zero simulated cycles; a fault whose
    divergence frontier (faulty vs golden over the cone, per block) goes
    empty while its site can never be excited again is dead and retires
    as its current verdict; and finished (detected or dead) blocks are
    *compacted away* -- once enough retire, the chunk rebuilds a
    narrower simulator over the survivors only, shrinking both the
    simulated width and (as survivor cones union smaller) the evaluated
    sub-schedule, until every fault is resolved or the stimulus ends.
    """
    n_cycles = stimulus.n_cycles
    compiled = compile_netlist(netlist)
    if cones is None:
        cones = compute_cones(netlist, chunk)
    total_gates = sum(
        len(g.gate_idx) for level in compiled.levels for g in level
    ) + sum(len(g.gate_idx) for g in compiled.seq_groups)

    outcomes: list[tuple[Verdict, int] | None] = [None] * len(chunk)
    observe_set = set(observe)
    sim_idx = [
        i for i, f in enumerate(chunk) if not cones[f].nets.isdisjoint(observe_set)
    ]
    for i in range(len(chunk)):
        if outcomes[i] is None and i not in sim_idx:
            outcomes[i] = (Verdict.UNDETECTED, -1)
    stats = {
        "faults": len(chunk),
        "unobservable": len(chunk) - len(sim_idx),
        "dead": [],
        "cycles": 0,
        "cycles_full": 0,
        "gate_evals": 0,
        "gate_evals_full": 0,
    }
    if not sim_idx:
        # every fault is structurally unobservable; the unrestricted
        # engine would still have simulated the full stimulus
        stats["cycles_full"] = n_cycles
        stats["gate_evals_full"] = n_cycles * total_gates * len(chunk)
        return _ChunkOutcomes(outcomes, stats)

    sim_faults = [chunk[i] for i in sim_idx]
    wpb = stimulus.n_patterns // V.WORD_BITS
    planes = golden.planes
    assert planes is not None
    n_total = len(sim_faults)
    excite_from = np.stack([_excite_from(planes, f) for f in sim_faults])

    detect_cycle = np.full(n_total, -1, dtype=np.int64)
    potential = np.zeros(n_total, dtype=bool)
    dead = np.zeros(n_total, dtype=bool)
    done = np.zeros(n_total, dtype=bool)

    active = np.arange(n_total)  # sim block -> index into sim_faults
    cs = _ConeSim(
        netlist, compiled, sim_faults, cones, observe, wpb, valid_masks is not None
    )
    state = np.zeros((2, len(cs.state_rows), n_total * wpb), dtype=np.uint64)

    iters = 0
    gate_evals = 0
    for cycle in range(n_cycles):
        live_sim = ~done[active]
        n_live = int(live_sim.sum())
        if not n_live:
            break
        retired = len(active) - n_live
        if retired >= max(_CONE_RETIRE_MIN, len(active) // 4):
            keep = np.flatnonzero(live_sim)
            narrower = _ConeSim(
                netlist,
                compiled,
                [sim_faults[i] for i in active[keep]],
                cones,
                observe,
                wpb,
                valid_masks is not None,
            )
            state = narrower.compact_state(state, cs, keep)
            active, cs = active[keep], narrower
            live_sim = np.ones(len(active), dtype=bool)
        iters += 1
        gate_evals += cs.union_evals * len(active)
        plane = planes[cycle]
        cs.run_cycle(plane, state)
        hit_any, maybe_any = cs.observe_diff(golden, cycle, valid_masks)
        hit_sim = live_sim & hit_any
        if hit_sim.any():
            detect_cycle[active[hit_sim]] = cycle
            done[active[hit_sim]] = True
            live_sim &= ~hit_sim
            if not live_sim.any():
                break
        pot_sim = live_sim & maybe_any
        if pot_sim.any():
            potential[active[pot_sim]] = True
        cs.latch(state)
        # Fault-effect death: a live block whose just-latched cone state
        # matches the golden machine, and whose site can never be excited
        # from the next cycle on, will track the golden machine to the
        # end of time -- its verdict is final now.  (On the last cycle
        # there is no future left to prune.)
        if cycle + 1 < n_cycles:
            candidates = np.flatnonzero(live_sim & ~excite_from[active, cycle + 1])
            if len(candidates):
                newly = cs.dead_blocks(planes[cycle + 1], candidates, state)
                if len(newly):
                    dead[active[newly]] = True
                    done[active[newly]] = True

    for b, i in enumerate(sim_idx):
        if detect_cycle[b] >= 0:
            outcomes[i] = (Verdict.DETECTED, int(detect_cycle[b]))
        elif potential[b]:
            outcomes[i] = (Verdict.POTENTIAL, -1)
        else:
            outcomes[i] = (Verdict.UNDETECTED, -1)
    stats["dead"] = [sim_idx[b] for b in range(n_total) if dead[b]]
    # Exact counterfactual: the unrestricted engine early-exits only when
    # every fault of the chunk is detected (at the same cycles -- the
    # engines are bit-identical), otherwise it runs the full stimulus,
    # every gate, every block.
    all_detected = all(v == Verdict.DETECTED for v, _ in outcomes)
    legacy_iters = iters if all_detected else n_cycles
    stats["cycles"] = iters
    stats["cycles_full"] = legacy_iters
    stats["gate_evals"] = gate_evals
    stats["gate_evals_full"] = legacy_iters * total_gates * len(chunk)
    return _ChunkOutcomes(outcomes, stats)


def _fault_chunk_worker(context, chunk: list[FaultSite]) -> list[tuple[Verdict, int]]:
    """Simulate a chunk of faults in one block-parallel pass (pickles).

    Fault ``i`` of the chunk owns pattern block ``i`` of a simulator that is
    ``len(chunk)`` times wider than the stimulus; its stem/poison forces are
    confined to that block.  Bit positions are independent simulations, so
    every block reproduces the standalone faulted run bit-for-bit while the
    per-cycle numpy work is shared by the whole chunk.

    When the campaign enabled cone simulation (context carries the flag
    and a full :class:`GoldenTrace`), the chunk runs on the
    cone-restricted differential engine instead -- same verdicts, a
    fraction of the work.  Pattern counts that are not a multiple of 64
    fall back to the serial reference in either mode.
    """
    netlist, stimulus, observe, golden, valid_masks = context[:5]
    cone = len(context) > 5 and bool(context[5])
    cones = context[6] if len(context) > 6 else None
    if (
        cone
        and getattr(golden, "planes", None) is not None
        and stimulus.n_patterns % V.WORD_BITS == 0
    ):
        return _cone_chunk_worker(
            netlist, stimulus, observe, golden, valid_masks, chunk, cones
        )
    if len(chunk) == 1 or stimulus.n_patterns % V.WORD_BITS:
        return [
            simulate_one_fault(netlist, f, stimulus, observe, golden, valid_masks)
            for f in chunk
        ]
    n_obs = len(observe)
    wpb = stimulus.n_patterns // V.WORD_BITS  # words per fault block
    n_blocks = len(chunk)
    blocks = [(i * wpb, (i + 1) * wpb) for i in range(n_blocks)]
    sim = CycleSimulator(
        netlist,
        n_blocks * stimulus.n_patterns,
        faults=list(chunk),
        fault_blocks=blocks,
    )
    tiled = _TiledSim(sim, stimulus.n_patterns, n_blocks)
    detect_cycle = np.full(n_blocks, -1, dtype=np.int64)
    potential = np.zeros(n_blocks, dtype=bool)
    # Preallocated tiled golden/mask buffers (broadcast-filled per cycle;
    # np.tile used to allocate three fresh arrays every cycle).
    gz_t = np.empty((n_obs, n_blocks * wpb), dtype=np.uint64)
    go_t = np.empty_like(gz_t)
    vm_t = (
        np.empty(n_blocks * wpb, dtype=np.uint64) if valid_masks is not None else None
    )
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(tiled, cycle)
        sim.settle()
        gz, go = golden[cycle]
        gz_t.reshape(n_obs, n_blocks, wpb)[:] = gz[:, None, :]
        go_t.reshape(n_obs, n_blocks, wpb)[:] = go[:, None, :]
        fz = sim.Z[observe]
        fo = sim.O[observe]
        diff = (gz_t & fo) | (go_t & fz)
        maybe = (gz_t | go_t) & ~(fz | fo)
        if valid_masks is not None:
            vm_t.reshape(n_blocks, wpb)[:] = valid_masks[cycle][None, :]
            diff &= vm_t
            maybe &= vm_t
        live = detect_cycle < 0
        hit = diff.reshape(n_obs, n_blocks, wpb).any(axis=(0, 2))
        detect_cycle[live & hit] = cycle
        live &= ~hit
        if not live.any():
            break
        potential |= live & maybe.reshape(n_obs, n_blocks, wpb).any(axis=(0, 2))
        sim.latch()
    out: list[tuple[Verdict, int]] = []
    for i in range(n_blocks):
        if detect_cycle[i] >= 0:
            out.append((Verdict.DETECTED, int(detect_cycle[i])))
        elif potential[i]:
            out.append((Verdict.POTENTIAL, -1))
        else:
            out.append((Verdict.UNDETECTED, -1))
    return out


def fault_simulate(
    netlist: Netlist,
    faults: list[FaultSite],
    stimulus: Stimulus,
    observe: list[int] | None = None,
    valid_masks: list[np.ndarray] | None = None,
    n_jobs: int = 1,
    batch_faults: int = 32,
    cone_sim: bool = True,
    timeout: float | None = None,
    max_retries: int = 2,
    checkpoint: CampaignJournal | None = None,
    audit_rate: float = DEFAULT_AUDIT_RATE,
    strict: bool = False,
    chaos=None,
    eventsim_checks: int = DEFAULT_EVENTSIM_CHECKS,
    store: CampaignStore | None = None,
    store_key: str | None = None,
) -> FaultSimResult:
    """Fault simulation of ``faults`` under ``stimulus``.

    Faults are processed in block-parallel chunks of ``batch_faults`` (one
    wide simulator per chunk -- see :func:`_fault_chunk_worker`), and the
    chunks fan out across ``n_jobs`` worker processes.  Verdicts are
    bit-identical for every combination of the two knobs -- and for any
    interruption point of a checkpointed campaign, because every per-fault
    verdict is deterministic and independent.

    A hash-selected ``audit_rate`` fraction of the final verdicts is then
    re-derived through the serial per-fault simulator (an independent
    code path from the block-parallel workers), with the first few
    audited faults additionally cross-checked against the scalar
    event-driven engine.  A divergence is flagged as an
    :class:`~repro.core.integrity.IntegrityViolation` on the campaign
    report, and the fault's verdict falls back to the trusted serial
    reference (or, with ``strict=True``, the campaign aborts).

    Args:
        netlist: the design (controller-datapath system in the pipeline).
        faults: collapsed fault list to grade.
        stimulus: input driver (see :class:`Stimulus`).
        observe: nets to compare (defaults to the netlist's primary outputs).
        valid_masks: optional per-cycle pattern masks restricting when the
            tester samples the outputs.
        n_jobs: worker processes; 1 runs serially, negative uses every core.
        batch_faults: faults per block-parallel pass; 1 disables batching
            and simulates one fault per (cache-compiled) simulator.
        cone_sim: run chunks on the cone-restricted differential engine
            (default).  A pure performance knob -- verdicts, reports and
            store fingerprints are bit-identical either way.  Campaigns
            whose pattern count is not a multiple of 64 fall back to the
            unrestricted engine automatically.
        timeout: per-chunk seconds before a hung worker is killed and the
            chunk retried (see :class:`~repro.core.parallel.ParallelExecutor`).
        max_retries: extra attempts per failed/timed-out chunk.
        checkpoint: optional campaign journal; faults already journaled are
            skipped and replayed from disk, newly simulated faults are
            journaled as their chunk completes.
        audit_rate: fraction of faults re-simulated serially (0 disables
            the audit); selection is a pure hash of the fault key, so the
            audit set is identical for any job count or resume point.
        strict: abort on the first integrity violation instead of
            quarantining the fault and continuing.
        chaos: optional :class:`~repro.testing.chaos.ChaosEngine`
            injecting worker crashes/hangs and verdict bit-flips (test
            and CI use only).
        eventsim_checks: cap on audited faults also replayed through the
            event-driven reference engine (it is far slower per pattern).
        store: optional persistent campaign store; a complete cached
            stage result is replayed bit-identically (skipping simulation
            *and* audit -- the result was audited before publication),
            and a freshly computed clean campaign is published back.
        store_key: this campaign's canonical stage key (computed by the
            caller from the netlist/stimulus/config fingerprints -- see
            :mod:`repro.store.fingerprint`); required for ``store`` use.
    """
    if observe is None:
        observe = list(netlist.outputs)
    keys = {f: fault_key(f) for f in faults}

    # Persistent-store fast path: a complete cached verdict map replays
    # bit-identically without any simulation.  Partial/corrupt/foreign
    # payloads degrade to a miss (corruption is flagged by the store).
    if store is not None and store_key is not None:
        with StageTimer() as timer:
            cached = store.lookup("faultsim", store_key)
        if cached is not None and set(cached.get("verdicts", ())) == set(keys.values()):
            row = store.artifacts.row(store_key)
            store.record(
                StageProvenance(
                    stage="faultsim",
                    key=store_key,
                    hit=True,
                    wall_s=timer.wall_s,
                    saved_s=row.wall_s if row is not None else 0.0,
                )
            )
            result = FaultSimResult(
                verdicts={}, campaign=RunReport(n_items=len(faults))
            )
            for fault in faults:
                raw_verdict, cycle = cached["verdicts"][keys[fault]]
                verdict = Verdict(raw_verdict)
                result.verdicts[fault] = verdict
                if verdict is Verdict.DETECTED:
                    result.detect_cycle[fault] = int(cycle)
            return result

    stage_timer = StageTimer().__enter__()
    done: dict[FaultSite, tuple[Verdict, int]] = {}
    todo = list(faults)
    if checkpoint is not None:
        for fault in faults:
            entry = checkpoint.done.get(keys[fault])
            if entry is not None:
                done[fault] = (Verdict(entry[0]), int(entry[1]))
        todo = [f for f in faults if f not in done]
    outcomes_by_fault: dict[FaultSite, tuple[Verdict, int]] = dict(done)
    report = RunReport(n_items=len(faults), resumed=len(done))
    audit_keys = set(select_audit([keys[f] for f in faults], audit_rate))
    if chaos is not None:
        chaos.set_flip_targets(sorted(audit_keys))
    golden: list | GoldenTrace | None = None
    cone_active = bool(cone_sim) and stimulus.n_patterns % V.WORD_BITS == 0
    cone_stats = ConeStats() if cone_active else None
    dead_faults: list[FaultSite] = []
    if todo:
        compile_netlist(netlist)  # warm the shared compile before fanning out
        golden = run_golden(netlist, stimulus, observe, full=cone_active)
        cones = compute_cones(netlist, todo) if cone_active else None
        context = (netlist, stimulus, observe, golden, valid_masks, cone_active, cones)
        batch_faults = max(1, batch_faults)
        if cone_active:
            # Cone-overlap-aware chunking: faults whose cones share gates
            # land in the same chunk, shrinking each chunk's union cone.
            # Chunks are auto-widened beyond ``batch_faults`` (fixed numpy
            # dispatch cost amortizes across blocks), keeping one chunk per
            # worker for balance and capping the simulator width for memory.
            jobs = max(1, resolve_n_jobs(n_jobs))
            wpb = stimulus.n_patterns // V.WORD_BITS
            capacity = max(batch_faults, -(-len(todo) // jobs))
            capacity = min(capacity, max(batch_faults, _CONE_MAX_WORDS // wpb))
            chunks = chunk_by_cone(
                todo,
                cones,
                capacity,
                netlist,
                key=lambda f: keys[f],
            )
        else:
            chunks = [
                list(todo[i : i + batch_faults])
                for i in range(0, len(todo), batch_faults)
            ]

        def _journal_chunk(items, results) -> None:
            for chunk, chunk_out in zip(items, results):
                raw_stats = getattr(chunk_out, "stats", None)
                if raw_stats is not None and cone_stats is not None:
                    cone_stats.absorb(raw_stats)
                    dead_faults.extend(chunk[i] for i in raw_stats.get("dead", ()))
                for fault, (verdict, cycle) in zip(chunk, chunk_out):
                    if chaos is not None:
                        verdict, cycle = chaos.tamper_verdict(
                            keys[fault], (verdict, cycle)
                        )
                    outcomes_by_fault[fault] = (verdict, cycle)
                    if checkpoint is not None:
                        checkpoint.record(keys[fault], [verdict.value, cycle])

        worker, run_context = _fault_chunk_worker, context
        if chaos is not None:
            worker, run_context = chaos.wrap(worker, run_context)
        executor = ParallelExecutor(
            n_jobs, chunk_size=1, timeout=timeout, max_retries=max_retries
        )
        executor.run(worker, chunks, run_context, on_chunk=_journal_chunk)
        assert executor.last_report is not None
        report = executor.last_report
        # the executor counted fault-chunks; report in faults
        report.n_items = len(faults)
        report.completed = len(todo)
        report.resumed = len(done)

    # Differential audit: re-derive the hash-selected subset through the
    # serial per-fault path and compare against the campaign's verdicts.
    guard = IntegrityGuard(strict=strict)
    audited = [f for f in faults if keys[f] in audit_keys]
    if audited:
        if golden is None:  # fully resumed run never built the reference
            compile_netlist(netlist)
            golden = run_golden(netlist, stimulus, observe)
        for fault in audited:
            reference = simulate_one_fault(
                netlist, fault, stimulus, observe, golden, valid_masks
            )
            got = outcomes_by_fault[fault]
            if got != reference:
                guard.flag(
                    IntegrityViolation(
                        check="faultsim-differential",
                        fault=keys[fault],
                        site=fault.describe(netlist),
                        detail=(
                            "campaign verdict diverges from the serial "
                            "reference simulation; quarantined to the "
                            "reference"
                        ),
                        cycle=max(got[1], reference[1]),
                        expected=f"{reference[0].value}@{reference[1]}",
                        actual=f"{got[0].value}@{got[1]}",
                    )
                )
                outcomes_by_fault[fault] = reference
        # Spot-check the compiled engine itself against the scalar
        # event-driven reference on a capped handful of audited faults.
        from .eventsim import crosscheck_compiled

        for fault in sorted(audited, key=lambda f: keys[f])[: max(0, eventsim_checks)]:
            divergent = crosscheck_compiled(netlist, stimulus, observe, fault)
            if divergent >= 0:
                guard.flag(
                    IntegrityViolation(
                        check="eventsim-crosscheck",
                        fault=keys[fault],
                        site=fault.describe(netlist),
                        detail=(
                            "compiled simulator diverges from the "
                            "event-driven reference on an observed net"
                        ),
                        cycle=divergent,
                    )
                )
    # Death-pruning spot check: a capped, hash-ranked handful of faults the
    # cone engine retired early is re-simulated through the full serial
    # reference, continuously validating the pruning proof at runtime.
    # Faults already covered by the ordinary differential audit (and hence
    # by chaos verdict tampering, whose targets are a subset of it) are
    # excluded, so ``report.audited`` and clean-run accounting are
    # untouched.
    death_checked = sorted(
        (f for f in dead_faults if keys[f] not in audit_keys),
        key=lambda f: audit_fraction(keys[f], "death-audit"),
    )[: max(0, DEFAULT_DEATH_AUDIT_CHECKS) if audit_rate > 0 else 0]
    for fault in death_checked:
        reference = simulate_one_fault(
            netlist, fault, stimulus, observe, golden, valid_masks
        )
        got = outcomes_by_fault[fault]
        if got != reference:
            guard.flag(
                IntegrityViolation(
                    check="cone-death-differential",
                    fault=keys[fault],
                    site=fault.describe(netlist),
                    detail=(
                        "death-pruned verdict diverges from the serial "
                        "reference simulation; quarantined to the "
                        "reference"
                    ),
                    cycle=max(got[1], reference[1]),
                    expected=f"{reference[0].value}@{reference[1]}",
                    actual=f"{got[0].value}@{got[1]}",
                )
            )
            outcomes_by_fault[fault] = reference
    guard.attach(report, audited=len(audited))
    stage_timer.__exit__()
    if store is not None and store_key is not None:
        # Publish only clean campaigns: quarantined/audit-corrected results
        # must never be served stale from a warm cache.  A fully journal-
        # resumed campaign publishes too (the checkpoint layer's results
        # graduate into the durable store on completion).
        published = False
        if clean_campaign(report):
            published = store.publish(
                "faultsim",
                store_key,
                {
                    "verdicts": {
                        keys[f]: [outcomes_by_fault[f][0].value, outcomes_by_fault[f][1]]
                        for f in faults
                    }
                },
                design=netlist.name,
                meta={"faults": len(faults), "patterns": stimulus.n_patterns},
                wall_s=stage_timer.wall_s,
            )
            if published and checkpoint is not None and chaos is None:
                checkpoint.retire()
        store.record(
            StageProvenance(
                stage="faultsim",
                key=store_key,
                hit=False,
                wall_s=stage_timer.wall_s,
                published=published,
            )
        )
    result = FaultSimResult(
        verdicts={}, campaign=report, cone=cone_stats if todo else None
    )
    for fault in faults:
        verdict, cycle = outcomes_by_fault[fault]
        result.verdicts[fault] = verdict
        if verdict is Verdict.DETECTED:
            result.detect_cycle[fault] = cycle
    return result
