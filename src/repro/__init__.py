"""repro -- reproduction of *Detecting Undetectable Controller Faults Using
Power Analysis* (Carletta, Papachristou, Nourani; DATE 2000).

Quickstart::

    from repro import build_rtl, build_system, run_pipeline, grade_sfr_faults

    system = build_system(build_rtl("diffeq"))
    result = run_pipeline(system)           # CFR / SFR / SFI classification
    grading = grade_sfr_faults(system, result)  # Monte-Carlo power grades
    print(grading.summary())

Package layout:

* :mod:`repro.netlist` -- gate library, netlist graph, Verilog/.bench I/O;
* :mod:`repro.logic` -- 3-valued pattern-parallel simulation, stuck-at
  faults, fault simulation;
* :mod:`repro.synth` -- FSM model, state encoding, two-level minimisation,
  controller synthesis;
* :mod:`repro.hls` -- SYNTEST-like high-level synthesis (schedule, bind,
  RTL, gate-level elaboration, system assembly);
* :mod:`repro.power` -- switched-capacitance power model, Monte Carlo;
* :mod:`repro.tpg` -- LFSR-based pseudorandom pattern generation;
* :mod:`repro.core` -- the paper's contribution: control-line effects,
  SFR/SFI classification, the Section-5 pipeline, power grading, reports;
* :mod:`repro.store` -- content-addressed campaign store: persistent
  stage cache with bit-identical warm replays, query and serve layers;
* :mod:`repro.designs` -- the Diffeq / Facet / Poly benchmark designs.
"""

from .core.grading import GradingResult, grade_sfr_faults
from .core.pipeline import PipelineConfig, PipelineResult, run_pipeline
from .designs.catalog import build_rtl, design_names
from .store.cache import CampaignStore
from .hls.system import NormalModeStimulus, System, build_system
from .logic.faults import FaultSite, collapse_faults, enumerate_faults
from .logic.faultsim import Verdict, fault_simulate
from .logic.simulator import CycleSimulator
from .netlist.builder import NetlistBuilder
from .netlist.netlist import Netlist
from .power.estimator import PowerEstimator
from .power.montecarlo import monte_carlo_power

__version__ = "1.0.0"

__all__ = [
    "CampaignStore",
    "CycleSimulator",
    "FaultSite",
    "GradingResult",
    "Netlist",
    "NetlistBuilder",
    "NormalModeStimulus",
    "PipelineConfig",
    "PipelineResult",
    "PowerEstimator",
    "System",
    "Verdict",
    "build_rtl",
    "build_system",
    "collapse_faults",
    "design_names",
    "enumerate_faults",
    "fault_simulate",
    "grade_sfr_faults",
    "monte_carlo_power",
    "run_pipeline",
    "__version__",
]
