"""PODEM: deterministic test generation for combinational netlists.

Goel's Path-Oriented DEcision Making, implemented over this library's
netlist substrate.  It operates on a *combinational* netlist (primary
inputs only -- for sequential designs, use :func:`repro.dft.scan.scan_view`
to open the flip-flops first) and, for a single stuck-at fault, either

* returns a primary-input assignment that detects the fault,
* proves the fault **redundant** (the decision space is exhausted -- PODEM
  is complete), or
* gives up after a backtrack limit (``aborted``).

The D-calculus is carried as a pair of three-valued machines: every net
holds ``(good, faulty)`` with values in {0, 1, X}.  ``D`` is ``(1, 0)``
and ``D'`` is ``(0, 1)``.  Implication is a full forward resimulation of
both machines in level order -- the netlists this library produces are a
few hundred gates, where resimulation beats incremental bookkeeping in
clarity and is still instant.

Used by :mod:`repro.core.teststrategies` to push separate-test coverage
from "random patterns found most" to "everything not provably redundant".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..logic.eventsim import X, _eval3
from ..logic.faults import FaultSite
from ..logic.levelize import levelize
from ..netlist.gates import GateType, is_constant, is_sequential
from ..netlist.netlist import Netlist

#: Controlling input value per gate type (None = none, e.g. XOR).
_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}
#: Output inversion parity per gate type.
_INVERTS = {GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR}


class Status(enum.Enum):
    TEST = "test"
    REDUNDANT = "redundant"
    ABORTED = "aborted"


@dataclass
class TestResult:
    status: Status
    assignment: dict[int, int] = field(default_factory=dict)  # PI net -> 0/1
    backtracks: int = 0

    @property
    def found(self) -> bool:
        return self.status is Status.TEST


class Podem:
    """Test generator bound to one combinational netlist."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 10_000):
        if any(is_sequential(g.gtype) for g in netlist.gates):
            raise ValueError("PODEM needs a combinational netlist (use scan_view)")
        netlist.validate()
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self._order = [g for level in levelize(netlist) for g in level]
        self._fanout = netlist.fanout_map()

    # ------------------------------------------------------------------ sim
    def _simulate(self, assignment: dict[int, int], fault: FaultSite):
        """Forward-simulate (good, faulty) pairs under a PI assignment."""
        n = self.netlist.num_nets
        good = [X] * n
        bad = [X] * n
        for net in self.netlist.inputs:
            v = assignment.get(net, X)
            good[net] = v
            bad[net] = v
        for g in self.netlist.gates:
            if is_constant(g.gtype):
                v = _eval3(g.gtype, [])
                good[g.output] = v
                bad[g.output] = v
        if fault.is_stem:
            bad[fault.net] = fault.value
        for gi in self._order:
            gate = self.netlist.gates[gi]
            good[gate.output] = _eval3(gate.gtype, [good[i] for i in gate.inputs])
            bad_in = [bad[i] for i in gate.inputs]
            if not fault.is_stem and fault.gate_index == gate.index:
                bad_in[fault.pin] = fault.value
            bad[gate.output] = _eval3(gate.gtype, bad_in)
            if fault.is_stem and gate.output == fault.net:
                bad[gate.output] = fault.value
        return good, bad

    # ------------------------------------------------------------ objectives
    def _fault_visible_at_site(self, good, bad, fault: FaultSite) -> bool:
        """Is the fault activated (D or D' at the fault site)?"""
        if fault.is_stem:
            g = good[fault.net]
            return g != X and g != fault.value
        gate = self.netlist.gates[fault.gate_index]
        g = good[gate.inputs[fault.pin]]
        return g != X and g != fault.value

    def _d_frontier(self, good, bad, fault: FaultSite):
        """Gates whose output is not yet resolved in at least one machine
        and that carry a D/D' on some input.  For a branch fault the error
        is born on a *pin*, so the faulted gate itself belongs to the
        frontier as soon as the fault is activated."""
        frontier = []
        for gi in self._order:
            gate = self.netlist.gates[gi]
            if good[gate.output] != X and bad[gate.output] != X:
                continue
            if (
                not fault.is_stem
                and gate.index == fault.gate_index
                and self._fault_visible_at_site(good, bad, fault)
            ):
                frontier.append(gate)
                continue
            for i in gate.inputs:
                if good[i] != X and bad[i] != X and good[i] != bad[i]:
                    frontier.append(gate)
                    break
        return frontier

    def _error_at_po(self, good, bad) -> bool:
        return any(
            good[o] != X and bad[o] != X and good[o] != bad[o]
            for o in self.netlist.outputs
        )

    def _error_possible(self, good, bad, fault) -> bool:
        """The fault can still reach a PO: it is activated (or could be)
        and either already at a PO or the D-frontier is nonempty."""
        if self._error_at_po(good, bad):
            return True
        # Not yet activated: possible as long as the site is still X.
        if fault.is_stem:
            site_good = good[fault.net]
        else:
            gate = self.netlist.gates[fault.gate_index]
            site_good = good[gate.inputs[fault.pin]]
        if site_good == X:
            return True
        if site_good == fault.value:
            return False  # activation failed for good
        # Activated: does any X path remain, or error already latched at PO?
        if self._d_frontier(good, bad, fault):
            return True
        # Error may sit on an internal net whose fanout is all assigned --
        # check whether any net with D/D' still reaches an X PO region: the
        # D-frontier test above covers it; also a PO itself may carry X in
        # one machine only (undetectable yet); be conservative:
        for o in self.netlist.outputs:
            if good[o] == X or bad[o] == X:
                return True
        return False

    def _objectives(self, good, bad, fault: FaultSite):
        """Candidate (net, value) objectives, in preference order."""
        if not self._fault_visible_at_site(good, bad, fault):
            if fault.is_stem:
                return [(fault.net, 1 - fault.value)]
            gate = self.netlist.gates[fault.gate_index]
            return [(gate.inputs[fault.pin], 1 - fault.value)]
        out = []
        for gate in self._d_frontier(good, bad, fault):
            ctl = _CONTROLLING.get(gate.gtype)
            for i in gate.inputs:
                if good[i] == X:
                    # A non-controlling value lets the error pass.
                    want = 1 - ctl if ctl is not None else 0
                    out.append((i, want))
                    break
        return out

    def _backtrace(self, net: int, value: int, good) -> tuple[int, int] | None:
        """Walk the objective back to an unassigned primary input."""
        seen = 0
        limit = 4 * (len(self.netlist.gates) + 4)
        while True:
            seen += 1
            if seen > limit:
                return None
            if net in self.netlist.inputs:
                return net, value
            gate = self.netlist.driver_of(net)
            if gate is None or is_constant(gate.gtype):
                return None
            if gate.gtype is GateType.MUX2:
                s, a, b = gate.inputs
                if good[s] == X:
                    net, value = s, 0
                    continue
                net = b if good[s] == 1 else a
                continue
            invert = gate.gtype in _INVERTS
            want = (1 - value) if invert else value
            x_inputs = [i for i in gate.inputs if good[i] == X]
            if not x_inputs:
                return None
            ctl = _CONTROLLING.get(gate.gtype)
            if gate.gtype in (GateType.NOT, GateType.BUF):
                net, value = gate.inputs[0], want
            elif gate.gtype in (GateType.XOR, GateType.XNOR):
                net, value = x_inputs[0], want  # parity fixed by siblings later
            elif ctl is not None and want == ctl:
                net, value = x_inputs[0], ctl
            else:
                net, value = x_inputs[0], 1 - ctl if ctl is not None else want
        # unreachable

    # ------------------------------------------------------------------ run
    def generate(self, fault: FaultSite) -> TestResult:
        """Find a test for ``fault``, prove it redundant, or abort."""
        assignment: dict[int, int] = {}
        # Decision stack: (pi net, value, tried_both)
        stack: list[list] = []
        backtracks = 0
        while True:
            good, bad = self._simulate(assignment, fault)
            if self._error_at_po(good, bad):
                return TestResult(Status.TEST, dict(assignment), backtracks)
            pi = None
            if self._error_possible(good, bad, fault):
                for net, value in self._objectives(good, bad, fault):
                    candidate = self._backtrace(net, value, good)
                    if candidate is not None and candidate[0] not in assignment:
                        pi = candidate
                        break
            if pi is not None and pi[0] not in assignment:
                stack.append([pi[0], pi[1], False])
                assignment[pi[0]] = pi[1]
                continue
            # Dead end: backtrack.
            while stack:
                net, val, tried = stack[-1]
                if not tried:
                    stack[-1][2] = True
                    stack[-1][1] = 1 - val
                    assignment[net] = 1 - val
                    backtracks += 1
                    break
                stack.pop()
                del assignment[net]
            else:
                return TestResult(Status.REDUNDANT, {}, backtracks)
            if backtracks > self.backtrack_limit:
                return TestResult(Status.ABORTED, {}, backtracks)


@dataclass
class AtpgSummary:
    """Outcome of running PODEM over a fault list."""

    tested: int = 0
    redundant: int = 0
    aborted: int = 0
    tests: dict[FaultSite, dict[int, int]] = field(default_factory=dict)
    redundant_faults: list[FaultSite] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.tested + self.redundant + self.aborted

    @property
    def coverage(self) -> float:
        """Detected over detectable (redundant faults excluded)."""
        detectable = self.total - self.redundant
        return self.tested / detectable if detectable else 1.0


def run_atpg(
    netlist: Netlist, faults: list[FaultSite], backtrack_limit: int = 10_000
) -> AtpgSummary:
    """Generate tests for every fault; collect redundancy proofs."""
    podem = Podem(netlist, backtrack_limit)
    summary = AtpgSummary()
    for fault in faults:
        result = podem.generate(fault)
        if result.status is Status.TEST:
            summary.tested += 1
            summary.tests[fault] = result.assignment
        elif result.status is Status.REDUNDANT:
            summary.redundant += 1
            summary.redundant_faults.append(fault)
        else:
            summary.aborted += 1
    return summary
