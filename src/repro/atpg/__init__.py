"""atpg subpackage."""
