"""Per-collapsed-fault store fingerprints.

Stage blobs key an *entire* campaign; these keys address one collapsed
fault's verdict (and classification) so a near-identical design can
replay most of a baseline campaign fault by fault.  Every entry is
published under two keys:

* the **aligned key** -- ``digest(baseline fingerprint + stage params +
  the fault's index-based campaign key)``.  Cheap to derive, but only
  meaningful together with the planner's soundness argument (the diff
  proves the edit cannot reach the fault);
* the **content key** -- ``digest(stage params + cone-content hash)``,
  where the cone-content hash covers exactly the gates in the fault's
  sequential fan-out cone from
  :func:`~repro.logic.cones.compute_cones`, *plus* the golden value
  columns of the cone's boundary nets.  Two faults with equal content
  keys see byte-identical inputs to a byte-identical sub-machine under
  byte-identical sampling, so the cached verdict transfers with no
  planner at all -- a cached verdict survives any edit outside its cone
  by construction, because such an edit either leaves the boundary
  columns alone (key hits) or disturbs them (key misses honestly).

Classification payloads additionally carry the classifier-context and
golden-control-trace digests they were computed under; a consumer only
reuses the classification when both match its own (verdicts come from
the integrated system, classifications from the standalone controller
plus the RT-level oracle, so their invalidation rules differ).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from ..logic.cones import FaultCone
from ..logic.faults import FaultSite
from ..netlist.netlist import Netlist
from ..store.fingerprint import SCHEMA_VERSION, digest


def params_digest(
    netlist: Netlist,
    config,
    observe: list[int],
    masks: Iterable[np.ndarray],
    n_cycles: int,
) -> str:
    """Digest of every campaign knob a per-fault verdict depends on.

    Nets are named, not numbered, so the digest survives renumbering;
    the hold masks are hashed as raw planes because verdict sampling
    windows must match bit for bit for any replay to be sound.
    """
    masks_sha = hashlib.sha256()
    for m in masks:
        masks_sha.update(np.ascontiguousarray(m).tobytes())
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "pipeline": config.fingerprint_params(),
            "stimulus": {
                "kind": "tpgr-normal-mode",
                "n_patterns": config.n_patterns,
                "n_cycles": n_cycles,
                "tpgr_seed": config.tpgr_seed,
            },
            "observe": [netlist.net_names[n] for n in observe],
            "masks": masks_sha.hexdigest(),
        }
    )


def meta_store_key(netlist_fp: str, pdigest: str) -> str:
    """Key of the per-campaign incremental metadata blob."""
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "stage": "incremental-meta",
            "netlist": netlist_fp,
            "params": pdigest,
        }
    )


def aligned_entry_key(baseline_fp: str, pdigest: str, fault_campaign_key: str) -> str:
    """Per-fault key addressed through the baseline campaign's identity."""
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "stage": "fault-entry",
            "netlist": baseline_fp,
            "params": pdigest,
            "fault": fault_campaign_key,
        }
    )


def content_entry_key(pdigest: str, cone_hash: str) -> str:
    """Per-fault key addressed purely by cone content (no baseline)."""
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "stage": "fault-entry",
            "params": pdigest,
            "cone": cone_hash,
        }
    )


def cone_boundary_nets(netlist: Netlist, cone: FaultCone) -> list[int]:
    """Nets the cone reads from the fault-free machine, sorted.

    Everything a cone gate reads that can never diverge (is outside
    ``cone.nets``) is boundary: during faulty simulation those nets hold
    exactly their golden values, so hashing the golden columns pins the
    cone's entire input space.
    """
    return sorted(
        {
            n
            for g in cone.gates
            for n in netlist.gates[g].inputs
            if n not in cone.nets
        }
    )


def golden_column_digest(planes: list[np.ndarray], net: int) -> str:
    """sha-256 of one net's golden (Z, O) columns across all cycles."""
    h = hashlib.sha256()
    for cycle_planes in planes:
        h.update(np.ascontiguousarray(cycle_planes[0, net]).tobytes())
        h.update(np.ascontiguousarray(cycle_planes[1, net]).tobytes())
    return h.hexdigest()


def cone_content_hash(
    netlist: Netlist,
    site: FaultSite,
    cone: FaultCone,
    planes: list[np.ndarray],
    column_cache: dict[int, str] | None = None,
) -> str:
    """Content hash of one fault's cone: site, gates, boundary columns.

    Gate rows are name-based and sorted, so the hash is independent of
    gate indices and net ids; ``planes`` is the full golden trace from
    :func:`~repro.logic.faultsim.run_golden` (``full=True``), used to
    pin the boundary values the cone would read during faulty replay.
    """
    names = netlist.net_names
    rows = sorted(
        [
            netlist.gates[g].gtype.name,
            names[netlist.gates[g].output],
            [names[i] for i in netlist.gates[g].inputs],
        ]
        for g in cone.gates
    )
    if column_cache is None:
        column_cache = {}
    boundary = {}
    for net in cone_boundary_nets(netlist, cone):
        col = column_cache.get(net)
        if col is None:
            col = column_cache[net] = golden_column_digest(planes, net)
        boundary[names[net]] = col
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "site": {
                "gate": (
                    None
                    if site.gate_index is None
                    else netlist.gates[site.gate_index].name
                ),
                "pin": site.pin,
                "net": names[site.net],
                "value": site.value,
            },
            "gates": rows,
            "boundary": boundary,
        }
    )


def classifier_context_digest(rtl, iteration_counts, hold_cycles: int) -> str:
    """Digest of the RT-level oracle's inputs besides the controller.

    Covers the datapath structure the symbolic replay walks (registers,
    muxes, functional units, bindings, schedule) and the scenario knobs;
    the controller's own behavior is pinned separately by the golden
    control-trace digest plus the controller fingerprint rules in
    :mod:`~repro.incremental.replay`.
    """

    def mux(m) -> dict:
        return {
            "name": m.name,
            "sel": list(m.sel_names),
            "sources": [s.label() for s in m.sources],
        }

    return digest(
        {
            "schema": SCHEMA_VERSION,
            "iteration_counts": list(iteration_counts),
            "hold_cycles": hold_cycles,
            "rtl": {
                "name": rtl.name,
                "width": rtl.width,
                "n_steps": rtl.schedule.n_steps,
                "steps": dict(rtl.schedule.steps),
                "load_lines": list(rtl.load_lines),
                "sel_lines": list(rtl.sel_lines),
                "cond_fu": rtl.cond_fu,
                "value_reg": dict(rtl.value_reg),
                "registers": [
                    {
                        "name": r.name,
                        "load": r.load_line,
                        "mux": mux(r.input_mux),
                        "holds": list(r.holds),
                    }
                    for r in rtl.registers
                ],
                "fus": [
                    {
                        "name": f.name,
                        "kind": str(f.kind),
                        "mux_a": mux(f.mux_a),
                        "mux_b": mux(f.mux_b),
                    }
                    for f in rtl.fus
                ],
                "bindings": {
                    op: {"fu": b.fu, "step": b.step, "dest": b.dest_register}
                    for op, b in rtl.bindings.items()
                },
            },
        }
    )


def golden_trace_digest(classifier) -> str:
    """Digest of the classifier's golden control traces, all scenarios."""
    rows = []
    for sc, trace, _table, _replay, _timeline in classifier._golden:
        rows.append(
            {
                "iterations": sc.iterations,
                "n_steps": sc.n_steps,
                "hold_cycles": sc.hold_cycles,
                "idle_cycles": sc.idle_cycles,
                "lines": trace.lines,
                "states": trace.states,
            }
        )
    return digest({"schema": SCHEMA_VERSION, "scenarios": rows})
