"""Structural netlist diffing with behavior-preservation certification.

:func:`diff_netlists` aligns two netlist versions -- by name where names
are stable, by iterative structural-signature refinement for renames --
and emits a typed :class:`NetlistDelta` of added/removed/modified gates
and flops plus a :class:`StabilityReport`.

:func:`certify_delta` then tries to *prove* the rewritten region
behavior-preserving: it extracts the changed gates of both versions as
two tiny combinational netlists sharing a boundary, enumerates every
3-valued assignment of the boundary inputs through the production
:class:`~repro.logic.simulator.CycleSimulator` (so the proof uses the
exact X-pessimism the campaign engine uses, not a hand-written
approximation), and compares the output planes bit for bit.  A certified
region means every fault sited *outside* it keeps its verdict: the
region computes the identical 3-valued function under any input values,
including the disturbed values a faulty machine feeds it.

The scripted single-gate edits (:func:`apply_gate_edit`,
:func:`edit_system_controller`) that CI and the benchmarks drive also
live here: a *restructure* (AND -> NAND+NOT and friends) is 3-valued
equivalent by construction and exercises the certified-region fast path;
a *retype* (AND -> OR) changes behavior and exercises the
cone-intersection fallback; a *rename* changes no structure at all.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..hls.system import System
from ..logic import values as V
from ..logic.simulator import CycleSimulator
from ..netlist.gates import GateType, is_constant, is_sequential
from ..netlist.netlist import Gate, Netlist

#: upper bound on boundary inputs for exhaustive 3-valued enumeration;
#: 3^8 = 6561 packed patterns is ~103 words per net, still trivial.
MAX_REGION_INPUTS = 8


@dataclass
class StabilityReport:
    """How much of the old netlist survived into the new one."""

    matched_gates: int
    matched_flops: int
    renamed_gates: int
    renamed_nets: int
    total_old_gates: int
    total_new_gates: int
    io_stable: bool

    @property
    def matched_fraction(self) -> float:
        if not self.total_old_gates:
            return 1.0
        return self.matched_gates / self.total_old_gates


@dataclass
class NetlistDelta:
    """Typed alignment of two netlist versions.

    ``gate_map``/``net_map`` carry every matched pair (old index/id ->
    new index/id), including renamed and modified ones; the change lists
    classify the pairs.  A *modified* gate is matched (same name or same
    structural signature) but differs in type, tag or connectivity under
    the net map.
    """

    old: Netlist
    new: Netlist
    gate_map: dict[int, int]
    net_map: dict[int, int]
    modified: list[tuple[int, int]] = field(default_factory=list)
    added_gates: list[int] = field(default_factory=list)
    removed_gates: list[int] = field(default_factory=list)
    renamed_gates: list[tuple[int, int]] = field(default_factory=list)
    added_nets: list[int] = field(default_factory=list)
    removed_nets: list[int] = field(default_factory=list)
    renamed_nets: list[tuple[int, int]] = field(default_factory=list)
    #: the primary input/output port lists no longer correspond
    io_changed: bool = False

    @property
    def structurally_empty(self) -> bool:
        """True when only names changed (or nothing at all)."""
        return not (
            self.modified
            or self.added_gates
            or self.removed_gates
            or self.added_nets
            or self.removed_nets
            or self.io_changed
        )

    @property
    def touched_new(self) -> frozenset[int]:
        """New-side gate indices with no unmodified old counterpart."""
        return frozenset(self.added_gates) | frozenset(n for _, n in self.modified)

    @property
    def touched_old(self) -> frozenset[int]:
        """Old-side gate indices with no unmodified new counterpart."""
        return frozenset(self.removed_gates) | frozenset(o for o, _ in self.modified)

    def stability(self) -> StabilityReport:
        flops = sum(
            1
            for o, n in self.gate_map.items()
            if is_sequential(self.old.gates[o].gtype)
            and (o, n) not in set(self.modified)
        )
        return StabilityReport(
            matched_gates=len(self.gate_map) - len(self.modified),
            matched_flops=flops,
            renamed_gates=len(self.renamed_gates),
            renamed_nets=len(self.renamed_nets),
            total_old_gates=len(self.old.gates),
            total_new_gates=len(self.new.gates),
            io_stable=not self.io_changed,
        )

    def summary(self) -> dict:
        """Flat counts for ``repro-faults diff`` and provenance meta."""

        def flops(netlist: Netlist, indices) -> int:
            return sum(1 for i in indices if is_sequential(netlist.gates[i].gtype))

        return {
            "added_gates": len(self.added_gates),
            "added_flops": flops(self.new, self.added_gates),
            "removed_gates": len(self.removed_gates),
            "removed_flops": flops(self.old, self.removed_gates),
            "modified_gates": len(self.modified),
            "modified_flops": flops(self.new, [n for _, n in self.modified]),
            "renamed_gates": len(self.renamed_gates),
            "added_nets": len(self.added_nets),
            "removed_nets": len(self.removed_nets),
            "renamed_nets": len(self.renamed_nets),
            "io_changed": self.io_changed,
            "structurally_empty": self.structurally_empty,
        }


def _match_structural(
    old: Netlist, new: Netlist, gate_map: dict[int, int], net_map: dict[int, int]
) -> None:
    """Signature-match renamed gates/nets, refining to a fixed point.

    A gate's signature is its type, tag and the already-matched identity
    of each pin; when exactly one unmatched gate on each side shares a
    signature they are the same gate under a rename, and matching them
    may resolve their output nets, which sharpens further signatures.
    """
    matched_new_gates = set(gate_map.values())
    matched_new_nets = set(net_map.values())

    while True:
        un_old = [g for g in old.gates if g.index not in gate_map]
        un_new = [g for g in new.gates if g.index not in matched_new_gates]
        if not un_old or not un_new:
            return

        def signature(g: Gate, mapped: dict[int, int], forward: bool):
            def token(net: int):
                if forward:
                    return mapped.get(net, "?")
                return net if net in matched_new_nets else "?"

            return (
                g.gtype.name,
                g.tag,
                tuple(token(n) for n in g.inputs),
                token(g.output),
            )

        by_sig_old: dict[tuple, list[Gate]] = {}
        for g in un_old:
            by_sig_old.setdefault(signature(g, net_map, True), []).append(g)
        by_sig_new: dict[tuple, list[Gate]] = {}
        for g in un_new:
            by_sig_new.setdefault(signature(g, net_map, False), []).append(g)

        progress = False
        for sig, olds in by_sig_old.items():
            news = by_sig_new.get(sig)
            if len(olds) != 1 or news is None or len(news) != 1:
                continue
            o, n = olds[0], news[0]
            gate_map[o.index] = n.index
            matched_new_gates.add(n.index)
            if o.output not in net_map and n.output not in matched_new_nets:
                net_map[o.output] = n.output
                matched_new_nets.add(n.output)
            progress = True
        if not progress:
            return


def diff_netlists(old: Netlist, new: Netlist) -> NetlistDelta:
    """Align ``old`` against ``new`` and classify every difference."""
    # Pass 1: names are the stable identity for nets and gates alike.
    new_net_by_name = {name: i for i, name in enumerate(new.net_names)}
    net_map = {
        i: new_net_by_name[name]
        for i, name in enumerate(old.net_names)
        if name in new_net_by_name
    }
    new_gate_by_name = {g.name: g.index for g in new.gates}
    gate_map = {
        g.index: new_gate_by_name[g.name]
        for g in old.gates
        if g.name in new_gate_by_name
    }
    # Pass 2: unmatched primary inputs correspond positionally (an input
    # rename keeps its port slot; there is no driver to match through).
    matched_new_nets = set(net_map.values())
    if len(old.inputs) == len(new.inputs):
        for o, n in zip(old.inputs, new.inputs):
            if o not in net_map and n not in matched_new_nets:
                net_map[o] = n
                matched_new_nets.add(n)
    # Pass 3: structural-signature refinement for renamed gates/nets.
    _match_structural(old, new, gate_map, net_map)

    delta = NetlistDelta(old=old, new=new, gate_map=gate_map, net_map=net_map)
    matched_new_gates = set(gate_map.values())
    matched_new_nets = set(net_map.values())
    delta.removed_gates = [g.index for g in old.gates if g.index not in gate_map]
    delta.added_gates = [
        g.index for g in new.gates if g.index not in matched_new_gates
    ]
    delta.removed_nets = [
        i for i in range(old.num_nets) if i not in net_map
    ]
    delta.added_nets = [
        i for i in range(new.num_nets) if i not in matched_new_nets
    ]
    for o, n in sorted(net_map.items()):
        if old.net_names[o] != new.net_names[n]:
            delta.renamed_nets.append((o, n))
    for o, n in sorted(gate_map.items()):
        og, ng = old.gates[o], new.gates[n]
        if og.name != ng.name:
            delta.renamed_gates.append((o, n))
        same = (
            og.gtype is ng.gtype
            and og.tag == ng.tag
            and len(og.inputs) == len(ng.inputs)
            and net_map.get(og.output) == ng.output
            and all(net_map.get(a) == b for a, b in zip(og.inputs, ng.inputs))
        )
        if not same:
            delta.modified.append((o, n))
    mapped_inputs = [net_map.get(i) for i in old.inputs]
    mapped_outputs = [net_map.get(i) for i in old.outputs]
    delta.io_changed = (
        mapped_inputs != list(new.inputs) or mapped_outputs != list(new.outputs)
    )
    return delta


# --------------------------------------------------------------------- region


@dataclass
class RegionReport:
    """Outcome of trying to certify the rewritten region equivalent."""

    equivalent: bool
    reason: str
    old_gates: tuple[int, ...] = ()
    new_gates: tuple[int, ...] = ()
    boundary_inputs: int = 0
    checked_patterns: int = 0


def _region_ports(
    netlist: Netlist, region: list[int]
) -> tuple[list[int], list[int]]:
    """(boundary input nets, boundary output nets) of a gate region.

    Inputs are nets the region reads but does not drive; outputs are
    region-driven nets read outside the region or listed as primary
    outputs.  Region-driven nets that are neither stay internal.
    """
    rset = set(region)
    driven = {netlist.gates[g].output for g in region}
    read = {n for g in region for n in netlist.gates[g].inputs}
    fanout = netlist.fanout_map()
    outputs = sorted(
        n
        for n in driven
        if n in netlist.outputs
        or any(gi not in rset for gi, _pin in fanout[n])
    )
    return sorted(read - driven), outputs


def _region_netlist(
    netlist: Netlist, region: list[int], inputs: list[int]
) -> tuple[Netlist, dict[int, int]]:
    """Extract the region as a standalone netlist; returns (mini, id map)."""
    mini = Netlist(name=f"{netlist.name}::region")
    ids: dict[int, int] = {}
    for n in inputs:
        ids[n] = mini.add_net(netlist.net_names[n])
        mini.mark_input(ids[n])
    for g_idx in region:
        out = netlist.gates[g_idx].output
        if out not in ids:
            ids[out] = mini.add_net(netlist.net_names[out])
    for g_idx in sorted(region):
        g = netlist.gates[g_idx]
        mini.add_gate(
            g.gtype, ids[g.output], [ids[i] for i in g.inputs], name=g.name, tag=g.tag
        )
    return mini, ids


def certify_delta(
    old: Netlist,
    new: Netlist,
    delta: NetlistDelta,
    max_inputs: int = MAX_REGION_INPUTS,
) -> RegionReport:
    """Prove (or decline to prove) the rewrite region behavior-preserving.

    All changed gates of both versions form one aggregate region.  When
    the region is combinational, its boundary nets correspond 1:1 under
    the delta's net map, and the boundary is small enough to enumerate,
    both region versions are simulated under every 3-valued boundary
    assignment on the production bit-plane simulator and their output
    planes compared exactly (including X positions).  Equality means the
    versions are indistinguishable by *any* surrounding machine -- golden
    or faulted -- so only faults sited on region gates can change verdict.
    """
    old_region = sorted(set(delta.removed_gates) | {o for o, _ in delta.modified})
    new_region = sorted(set(delta.added_gates) | {n for _, n in delta.modified})
    report = RegionReport(
        equivalent=False,
        reason="",
        old_gates=tuple(old_region),
        new_gates=tuple(new_region),
    )
    if not old_region and not new_region:
        report.equivalent = True
        report.reason = "structurally-empty"
        return report
    if delta.io_changed:
        report.reason = "primary-io-changed"
        return report
    for netlist, region in ((old, old_region), (new, new_region)):
        for g_idx in region:
            if is_sequential(netlist.gates[g_idx].gtype):
                report.reason = "sequential-gate-in-region"
                return report

    in_old, out_old = _region_ports(old, old_region)
    in_new, out_new = _region_ports(new, new_region)
    mapped_in = [delta.net_map.get(n) for n in in_old]
    mapped_out = [delta.net_map.get(n) for n in out_old]
    if None in mapped_in or None in mapped_out:
        report.reason = "unmapped-boundary-net"
        return report
    if sorted(mapped_in) != in_new or sorted(mapped_out) != out_new:
        report.reason = "boundary-mismatch"
        return report
    k = len(in_old)
    report.boundary_inputs = k
    if k > max_inputs:
        report.reason = f"boundary-too-wide ({k} > {max_inputs} inputs)"
        return report

    n_patterns = 3**k
    report.checked_patterns = n_patterns
    try:
        mini_old, ids_old = _region_netlist(old, old_region, in_old)
        mini_new, ids_new = _region_netlist(new, new_region, mapped_in)
        sims = []
        for mini, ids, ports in (
            (mini_old, ids_old, in_old),
            (mini_new, ids_new, mapped_in),
        ):
            sim = CycleSimulator(mini, n_patterns=n_patterns)
            sim.reset_state()
            for j, net in enumerate(ports):
                digits = (np.arange(n_patterns) // (3**j)) % 3
                sim.drive_words(
                    ids[net],
                    V.pack_bits((digits == 0).astype(np.uint8)),
                    V.pack_bits((digits == 1).astype(np.uint8)),
                )
            sim.settle()
            sims.append((sim, ids))
    except Exception as exc:  # combinational loop, arity trouble, ...
        report.reason = f"region-not-simulable ({exc})"
        return report

    (sim_old, map_old), (sim_new, map_new) = sims
    for o_net, n_net in zip(out_old, mapped_out):
        ro, rn = map_old[o_net], map_new[n_net]
        if not (
            np.array_equal(sim_old.Z[ro], sim_new.Z[rn])
            and np.array_equal(sim_old.O[ro], sim_new.O[rn])
        ):
            report.reason = (
                f"region-diverges-at {old.net_names[o_net]!r} under some "
                f"3-valued boundary assignment"
            )
            return report
    report.equivalent = True
    report.reason = "exhaustive-3-valued-equivalence"
    return report


# ------------------------------------------------------------ scripted edits

#: behavior-preserving De-Morgan-style split: gate -> complementary type
#: whose NOT-composition is 3-valued identical to the original.
RESTRUCTURE_MAP = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
}

#: behavior-*changing* in-place retype (same pins, different function).
RETYPE_MAP = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
}

EDIT_MODES = ("restructure", "retype", "rename")


def apply_gate_edit(netlist: Netlist, gate_name: str, mode: str) -> Netlist:
    """Rebuild ``netlist`` with one scripted edit at ``gate_name``.

    All original net ids and gate indices are preserved (new nets and
    gates append after the originals), so the edited netlist stays
    coherent with any id-holding wrapper built around the original.

    * ``restructure``: split the gate into its complementary type plus an
      inverter (``AND -> NAND + NOT`` etc.) -- 3-valued equivalent.
    * ``retype``: swap the gate for its dual in place -- behavior changes.
    * ``rename``: rename the gate and its output net -- structure intact.
    """
    if mode not in EDIT_MODES:
        raise ValueError(f"unknown edit mode {mode!r} (expected {EDIT_MODES})")
    target = next((g for g in netlist.gates if g.name == gate_name), None)
    if target is None:
        raise ValueError(f"no gate named {gate_name!r} in {netlist.name!r}")
    if mode == "restructure" and target.gtype not in RESTRUCTURE_MAP:
        raise ValueError(f"cannot restructure a {target.gtype.name} gate")
    if mode == "retype" and target.gtype not in RETYPE_MAP:
        raise ValueError(f"cannot retype a {target.gtype.name} gate")

    out_name = netlist.net_names[target.output]
    renames: dict[str, str] = {}
    if mode == "rename":
        renames[out_name] = f"{out_name}_r"
    edited = Netlist(name=netlist.name)
    for name in netlist.net_names:
        edited.add_net(renames.get(name, name))
    pre = edited.add_net(f"{out_name}__pre") if mode == "restructure" else None
    for i in netlist.inputs:
        edited.mark_input(i)
    for g in netlist.gates:
        gtype, output, name = g.gtype, g.output, g.name
        if g.index == target.index:
            if mode == "restructure":
                gtype, output = RESTRUCTURE_MAP[g.gtype], pre
            elif mode == "retype":
                gtype = RETYPE_MAP[g.gtype]
            else:
                name = f"{g.name}_r"
        edited.add_gate(gtype, output, list(g.inputs), name=name, tag=g.tag)
    if mode == "restructure":
        edited.add_gate(
            GateType.NOT,
            target.output,
            [pre],
            name=f"{target.name}__inv",
            tag=target.tag,
        )
    for o in netlist.outputs:
        edited.mark_output(o)
    return edited


def pick_editable_gate(system: System, mode: str) -> str:
    """Deterministically pick the first controller gate ``mode`` can edit."""
    eligible = {
        "restructure": lambda g: g.gtype in RESTRUCTURE_MAP,
        "retype": lambda g: g.gtype in RETYPE_MAP,
        "rename": lambda g: not is_constant(g.gtype) and not is_sequential(g.gtype),
    }[mode]
    for g in system.controller.netlist.gates:
        if eligible(g):
            return g.name
    raise ValueError(f"no controller gate eligible for a {mode!r} edit")


def edit_system_controller(system: System, gate_name: str, mode: str) -> System:
    """Apply one scripted edit to controller gate ``gate_name``, coherently.

    The standalone controller netlist and the integrated system netlist
    are edited in lockstep (the system instance carries the gate under
    the ``ctrl/`` prefix), and the system's controller gate/net maps are
    extended to cover any appended inverter -- so the edited system is a
    drop-in for :func:`~repro.core.pipeline.run_pipeline`.
    """
    ctrl = system.controller
    new_ctrl_netlist = apply_gate_edit(ctrl.netlist, gate_name, mode)
    new_sys_netlist = apply_gate_edit(system.netlist, f"ctrl/{gate_name}", mode)

    ctrl_net_map = dict(system.ctrl_net_map or {})
    ctrl_gate_map = dict(system.ctrl_gate_map or {})
    target = next(g for g in ctrl.netlist.gates if g.name == gate_name)
    ctrl_out = ctrl.netlist.net_names[target.output]
    if mode == "restructure":
        sys_out = _sys_net(system, gate_name)
        ctrl_net_map[f"{ctrl_out}__pre"] = new_sys_netlist.net_id(f"{sys_out}__pre")
        ctrl_gate_map[len(ctrl.netlist.gates)] = len(system.netlist.gates)
    elif mode == "rename":
        sys_id = ctrl_net_map.pop(ctrl_out, None)
        if sys_id is not None:
            ctrl_net_map[f"{ctrl_out}_r"] = sys_id

    new_ctrl = dataclasses.replace(ctrl, netlist=new_ctrl_netlist)
    return dataclasses.replace(
        system,
        netlist=new_sys_netlist,
        controller=new_ctrl,
        ctrl_net_map=ctrl_net_map,
        ctrl_gate_map=ctrl_gate_map,
    )


def _sys_net(system: System, gate_name: str) -> str:
    """System-side name of the net a controller gate drives."""
    sys_gate = next(
        g for g in system.netlist.gates if g.name == f"ctrl/{gate_name}"
    )
    return system.netlist.net_names[sys_gate.output]
