"""Incremental recompute: diff a netlist against a baseline, replay the store.

A one-gate edit used to change :func:`~repro.store.fingerprint.netlist_fingerprint`
and miss every stage blob, so iterative users paid the full cold campaign.
This package makes campaign caching *fault-granular*:

* :mod:`~repro.incremental.netdiff` -- structural netlist diffing
  (name-stable alignment plus signature matching for renames), a typed
  :class:`~repro.incremental.netdiff.NetlistDelta`, exhaustive 3-valued
  equivalence certification of the rewritten region, and the scripted
  one-gate edit helpers CI/benchmarks drive;
* :mod:`~repro.incremental.faultkeys` -- per-collapsed-fault store keys
  (baseline-aligned and cone-content-addressed);
* :mod:`~repro.incremental.replay` -- the recompute planner that
  partitions a fault universe into replayable vs dirty, and the
  publication path that writes per-fault entries alongside stage blobs.

The pipeline entry point is ``run_pipeline(..., baseline=...)`` and the
CLI surface is ``--baseline`` plus the ``repro-faults diff`` subcommand.
"""

from .netdiff import (
    NetlistDelta,
    RegionReport,
    StabilityReport,
    apply_gate_edit,
    certify_delta,
    diff_netlists,
    edit_system_controller,
    pick_editable_gate,
)
from .replay import (
    IncrementalPlan,
    grading_seed_results,
    plan_recompute,
    project_dirty,
    publish_incremental,
    resolve_baseline,
)

__all__ = [
    "NetlistDelta",
    "RegionReport",
    "StabilityReport",
    "IncrementalPlan",
    "apply_gate_edit",
    "certify_delta",
    "diff_netlists",
    "edit_system_controller",
    "grading_seed_results",
    "pick_editable_gate",
    "plan_recompute",
    "project_dirty",
    "publish_incremental",
    "resolve_baseline",
]
