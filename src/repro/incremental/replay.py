"""Recompute planner + merger for incremental campaigns.

Given a baseline netlist and its published per-fault entries,
:func:`plan_recompute` partitions the current design's collapsed fault
universe into *reusable* (verdict provably unchanged, entry present in
the store) and *dirty* (everything else), so the pipeline re-simulates
only the dirty set and merges replayed entries back into a result that
is byte-identical to a cold full run.

Soundness of verdict reuse, in decreasing order of precision:

1. **Structurally empty delta** (pure renames): indices, behavior and
   sampling are untouched; every aligned entry replays.
2. **Certified region** (see :func:`~repro.incremental.netdiff.certify_delta`):
   the changed gates compute the identical 3-valued function under every
   boundary assignment, so any fault sited outside the region drives the
   exact same values on every original net -- golden and faulty alike.
   Only faults sited *on* region gates are dirty.
3. **Cone intersection** (fallback): a fault whose sequential fan-out
   cone is gate-disjoint from the edit's fan-out closure cannot observe
   the edit (no cone gate reads an edit-disturbed net -- any gate that
   did would be in the closure), and the edit cannot observe the fault
   (any gate reading a cone net is a cone gate), so both machines agree
   on every net the verdict samples.

All three are additionally gated on a parameter digest that pins the
stimulus plan, observed nets and the per-cycle hold masks bit for bit
(an edit that shifts golden HOLD timing changes the masks, misses the
meta blob, and degrades to an honest full recompute).

Reused *classifications* need more: the RT-level oracle runs on the
standalone controller, so an entry's classification only transfers when
its classifier-context and golden-trace digests match ours and the
controller itself is either untouched or rewritten inside a certified
region.  Otherwise the verdict replays and the classifier reruns --
still far cheaper than fault simulation.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field

from ..core.checkpoint import fault_key
from ..core.classify import EffectLabel, FaultClassification, LabeledEffect
from ..core.effects import ControlLineEffect
from ..logic.cones import compute_cones, net_closure
from ..logic.faults import FaultSite
from ..logic.faultsim import Verdict, run_golden
from ..netlist.netlist import Netlist
from ..power.montecarlo import MonteCarloResult, mc_campaign_params
from ..store.cache import CampaignStore
from ..store.fingerprint import (
    SCHEMA_VERSION,
    netlist_fingerprint,
    netlist_from_payload,
    netlist_payload,
    netlist_store_key,
    stage_key,
)
from .faultkeys import (
    aligned_entry_key,
    classifier_context_digest,
    cone_content_hash,
    content_entry_key,
    golden_trace_digest,
    meta_store_key,
    params_digest,
)
from .netdiff import NetlistDelta, RegionReport, certify_delta, diff_netlists

logger = logging.getLogger(__name__)


# --------------------------------------------- classification serialization


def classification_to_json(c: FaultClassification) -> dict:
    return {
        "category": c.category,
        "reason": c.reason,
        "effects": [
            [
                e.effect.cycle,
                e.effect.state,
                e.effect.line,
                e.effect.golden,
                e.effect.faulty,
                e.label.name,
                e.register,
            ]
            for e in c.effects
        ],
    }


def classification_from_json(payload: dict, fault: FaultSite) -> FaultClassification:
    return FaultClassification(
        fault=fault,
        category=payload["category"],
        effects=[
            LabeledEffect(
                effect=ControlLineEffect(
                    cycle=cycle, state=state, line=line, golden=golden, faulty=faulty
                ),
                label=EffectLabel[label],
                register=register,
            )
            for cycle, state, line, golden, faulty, label, register in payload[
                "effects"
            ]
        ],
        reason=payload["reason"],
    )


# ------------------------------------------------------------------ planning


@dataclass
class ReplayedFault:
    """One fault's store entry, admitted for replay by the planner."""

    verdict: Verdict
    detect_cycle: int
    classification: dict | None
    classify_ctx: str
    ctrl_traces: str
    ctrl_fp: str
    source: str  # 'aligned' | 'content'


@dataclass
class IncrementalPlan:
    """Partition of one fault universe into replayable vs dirty."""

    baseline_fp: str
    params: str
    delta: NetlistDelta
    region: RegionReport
    #: system fault site -> admitted store entry
    reusable: dict[FaultSite, ReplayedFault] = field(default_factory=dict)
    #: system fault sites needing simulation, in universe order
    dirty: list[FaultSite] = field(default_factory=list)
    reasons: dict[str, int] = field(default_factory=dict)
    #: a certified/empty *controller-side* delta: classifications may
    #: transfer across the controller-fingerprint change
    ctrl_preserving: bool = False
    #: wall seconds the baseline's cold faultsim stage spent (for saved_s)
    baseline_wall_s: float = 0.0

    @property
    def n_faults(self) -> int:
        return len(self.reusable) + len(self.dirty)

    @property
    def dirty_fraction(self) -> float:
        return len(self.dirty) / self.n_faults if self.n_faults else 0.0

    def classification_ok(
        self, entry: ReplayedFault, ctx_digest: str, traces_digest: str, ctrl_fp: str
    ) -> bool:
        """May this entry's classification stand in for a fresh one?"""
        if entry.classification is None:
            return False
        if entry.classify_ctx != ctx_digest or entry.ctrl_traces != traces_digest:
            return False
        return entry.ctrl_fp == ctrl_fp or self.ctrl_preserving

    def summary(self) -> dict:
        return {
            "baseline": self.baseline_fp[:16],
            "faults": self.n_faults,
            "reusable": len(self.reusable),
            "dirty": len(self.dirty),
            "dirty_fraction": self.dirty_fraction,
            "reasons": dict(sorted(self.reasons.items())),
            "region_equivalent": self.region.equivalent,
            "region_reason": self.region.reason,
            "delta": self.delta.summary(),
        }


def _count(reasons: dict[str, int], why: str) -> None:
    reasons[why] = reasons.get(why, 0) + 1


def _ctrl_prefixed(netlist: Netlist, indices) -> bool:
    return all(netlist.gates[g].name.startswith("ctrl/") for g in indices)


def structural_dirty_sites(
    netlist: Netlist,
    delta: NetlistDelta,
    region: RegionReport,
    system_sites: list[FaultSite],
) -> tuple[set[FaultSite], dict[FaultSite, str]]:
    """Faults whose verdicts the structural argument cannot preserve."""
    dirty: set[FaultSite] = set()
    why: dict[FaultSite, str] = {}
    if delta.structurally_empty:
        return dirty, why
    touched = set(delta.touched_new)
    if region.equivalent:
        for s in system_sites:
            if s.gate_index in touched:
                dirty.add(s)
                why[s] = "sited-in-region"
        return dirty, why
    seeds = sorted({netlist.gates[g].output for g in touched})
    impact_gates, _impact_nets = net_closure(netlist, seeds)
    impact = set(impact_gates) | touched
    cones = compute_cones(netlist, system_sites)
    for s in system_sites:
        if s.gate_index in touched:
            dirty.add(s)
            why[s] = "sited-in-region"
        elif not cones[s].gates.isdisjoint(impact):
            dirty.add(s)
            why[s] = "cone-intersects-edit"
    return dirty, why


def project_dirty(
    baseline: Netlist,
    system,
    system_sites: list[FaultSite],
) -> tuple[NetlistDelta, RegionReport, dict]:
    """Structural dirty projection for ``repro-faults diff`` (no store).

    Returns the delta, the region certification attempt and a summary
    with the projected dirty fraction -- an upper bound on what an
    actual ``--baseline`` replay would re-simulate, assuming the
    baseline campaign's per-fault entries are all present.
    """
    delta = diff_netlists(baseline, system.netlist)
    region = certify_delta(baseline, system.netlist, delta)
    if delta.io_changed:
        dirty = set(system_sites)
    else:
        dirty, _why = structural_dirty_sites(
            system.netlist, delta, region, system_sites
        )
    total = len(system_sites)
    return (
        delta,
        region,
        {
            "faults": total,
            "projected_dirty": len(dirty),
            "projected_dirty_fraction": len(dirty) / total if total else 0.0,
            "region_equivalent": region.equivalent,
            "region_reason": region.reason,
            "delta": delta.summary(),
        },
    )


def plan_recompute(
    store: CampaignStore,
    baseline: Netlist,
    system,
    config,
    universe: list[FaultSite],
    system_sites: list[FaultSite],
    stimulus,
    observe: list[int],
    masks,
) -> IncrementalPlan | None:
    """Partition the fault universe against a baseline campaign.

    Returns None when the baseline has no compatible incremental
    metadata in the store (different params, masks, schema, or it was
    never published) -- the caller then runs a normal cold campaign.
    """
    netlist = system.netlist
    pdigest = params_digest(netlist, config, observe, masks, stimulus.n_cycles)
    baseline_fp = netlist_fingerprint(baseline)
    meta = store.lookup("incremental-meta", meta_store_key(baseline_fp, pdigest))
    if meta is None or meta.get("schema") != SCHEMA_VERSION:
        logger.info(
            "incremental: no compatible baseline metadata for %s; cold run",
            baseline_fp[:16],
        )
        return None

    delta = diff_netlists(baseline, netlist)
    region = certify_delta(baseline, netlist, delta)
    plan = IncrementalPlan(
        baseline_fp=baseline_fp,
        params=pdigest,
        delta=delta,
        region=region,
        baseline_wall_s=float(meta.get("faultsim_wall_s", 0.0)),
    )
    plan.ctrl_preserving = delta.structurally_empty or (
        region.equivalent
        and _ctrl_prefixed(netlist, delta.touched_new)
        and _ctrl_prefixed(baseline, delta.touched_old)
    )
    if delta.io_changed:
        plan.dirty = list(system_sites)
        plan.reasons = {"primary-io-changed": len(system_sites)}
        return plan

    dirty_set, why = structural_dirty_sites(netlist, delta, region, system_sites)

    # Translate the baseline universe into new-side identities through the
    # alignment, so each surviving fault finds its baseline campaign key.
    old_gate_names = {
        baseline.gates[o].name: netlist.gates[n].name
        for o, n in delta.gate_map.items()
    }
    old_net_names = {
        baseline.net_names[o]: netlist.net_names[n]
        for o, n in delta.net_map.items()
    }
    old_keys: dict[tuple, str] = {}
    for entry in meta.get("universe", ()):
        gate = entry["gate"]
        tgate = old_gate_names.get(gate) if gate is not None else None
        tnet = old_net_names.get(entry["net"])
        if (gate is not None and tgate is None) or tnet is None:
            continue  # the fault's site did not survive the edit
        old_keys[(tgate, entry["pin"], tnet, entry["value"])] = entry["key"]

    # Content keys need cones plus the golden trace; both are lazy because
    # the aligned path usually covers every reusable fault.
    lazy: dict = {}

    def content_key(site: FaultSite) -> str:
        if "planes" not in lazy:
            lazy["cones"] = compute_cones(netlist, system_sites)
            lazy["planes"] = run_golden(
                netlist, stimulus, observe, full=True
            ).planes
            lazy["columns"] = {}
        return content_entry_key(
            plan.params,
            cone_content_hash(
                netlist, site, lazy["cones"][site], lazy["planes"], lazy["columns"]
            ),
        )

    names = netlist.net_names
    for site in system_sites:
        if site in dirty_set:
            plan.dirty.append(site)
            _count(plan.reasons, why[site])
            continue
        gate = (
            None if site.gate_index is None else netlist.gates[site.gate_index].name
        )
        ident = (gate, site.pin, names[site.net], site.value)
        entry = None
        source = "aligned"
        old_key = old_keys.get(ident)
        if old_key is not None:
            entry = store.lookup(
                "fault-entry", aligned_entry_key(baseline_fp, pdigest, old_key)
            )
        if entry is None:
            source = "content"
            entry = store.lookup("fault-entry", content_key(site))
        if entry is None or entry.get("schema") != SCHEMA_VERSION:
            plan.dirty.append(site)
            _count(
                plan.reasons,
                "new-site" if old_key is None else "missing-entry",
            )
            continue
        verdict_value, cycle = entry["verdict"]
        plan.reusable[site] = ReplayedFault(
            verdict=Verdict(verdict_value),
            detect_cycle=int(cycle),
            classification=entry.get("classification"),
            classify_ctx=entry.get("classify_ctx", ""),
            ctrl_traces=entry.get("ctrl_traces", ""),
            ctrl_fp=entry.get("ctrl_fp", ""),
            source=source,
        )
        _count(plan.reasons, f"replayed-{source}")
    return plan


# ------------------------------------------------------------------ baseline


def resolve_baseline(
    store: CampaignStore | None,
    spec,
    design: str | None = None,
    exclude_fp: str | None = None,
) -> Netlist | None:
    """Turn a ``--baseline`` spec into a netlist, or None.

    Accepts a :class:`Netlist` (passed through), a 64-hex fingerprint
    (looked up among published ``netlist`` blobs), a path to a netlist
    payload JSON (as written by ``repro-faults diff --dump``), or
    ``"auto"`` -- the most recently published netlist for ``design``
    whose fingerprint differs from ``exclude_fp`` (what the campaign
    service uses so near-duplicate uploads hit warm per-fault entries).
    """
    if isinstance(spec, Netlist):
        return spec
    if not isinstance(spec, str) or not spec:
        return None
    if spec == "auto":
        if store is None or design is None:
            return None
        rows = getattr(store.artifacts, "rows", None)
        if rows is None:
            return None
        best = None
        for row in rows(kind="netlist", design=design):
            fp = (row.meta or {}).get("fingerprint")
            if fp and fp != exclude_fp:
                best = row  # rows() orders by created_at: keep the latest
        if best is None:
            return None
        payload = store.lookup("netlist", best.key)
        return netlist_from_payload(payload) if payload else None
    if len(spec) == 64 and all(c in "0123456789abcdef" for c in spec):
        if store is None:
            return None
        payload = store.lookup("netlist", netlist_store_key(spec))
        if payload is None:
            logger.warning("incremental: no published netlist for %s", spec[:16])
            return None
        return netlist_from_payload(payload)
    if os.path.exists(spec):
        try:
            with open(spec, "r", encoding="utf-8") as fh:
                return netlist_from_payload(json.load(fh))
        except Exception as exc:
            logger.warning("incremental: could not load baseline %s: %s", spec, exc)
            return None
    logger.warning("incremental: unresolvable baseline spec %r", spec)
    return None


# ---------------------------------------------------------- grading transfer


def grading_seed_results(
    store: CampaignStore,
    plan: IncrementalPlan,
    design: str,
    sfr_sites: list[FaultSite],
    seed: int,
    batch_patterns: int,
    max_batches: int,
    iterations_window: int,
) -> dict | None:
    """Replay a baseline grading campaign across a pure-rename delta.

    Power reuse is deliberately narrower than verdict reuse: Monte-Carlo
    powers integrate toggle activity over the *whole* netlist, so even a
    certified behavior-preserving rewrite (extra gates, different types)
    changes them.  Only a structurally empty delta -- identical gates and
    connectivity, names aside -- leaves every power bit-identical.  The
    baseline's per-fault results are translated through the alignment
    into this design's campaign keys and handed to
    :func:`~repro.core.grading.grade_sfr_faults` as ``seed_results``.

    Returns None (cold grading) unless the delta is structurally empty,
    the whole SFR universe translates, and the baseline's grading stage
    blob covers exactly the translated universe.
    """
    if not plan.delta.structurally_empty:
        return None
    inv_gate = {n: o for o, n in plan.delta.gate_map.items()}
    inv_net = {n: o for o, n in plan.delta.net_map.items()}
    old_keys: list[str] = []
    for site in sfr_sites:
        old_gate = (
            "pi" if site.gate_index is None else inv_gate.get(site.gate_index)
        )
        old_net = inv_net.get(site.net)
        if old_gate is None or old_net is None:
            return None
        old_keys.append(f"{old_gate}:{site.pin}:{old_net}:{site.value}")
    mc_params = mc_campaign_params(seed, batch_patterns, max_batches, iterations_window)
    cached = store.lookup(
        "grading",
        stage_key(
            "grading",
            plan.baseline_fp,
            {"design": design, "faults": old_keys, "mc": mc_params},
        ),
    )
    if (
        cached is None
        or "baseline" not in cached
        or set(cached.get("faults", ())) != set(old_keys)
    ):
        return None
    seeds = {"__fault_free__": MonteCarloResult.from_json_dict(cached["baseline"])}
    for site, old_key in zip(sfr_sites, old_keys):
        seeds[fault_key(site)] = MonteCarloResult.from_json_dict(
            cached["faults"][old_key]
        )
    logger.info(
        "incremental: seeding %d graded powers from baseline %s",
        len(seeds) - 1,
        plan.baseline_fp[:16],
    )
    return seeds


# --------------------------------------------------------------- publication


def publish_incremental(
    store: CampaignStore,
    system,
    config,
    stimulus,
    observe: list[int],
    masks,
    result,
    detect_cycles: dict[FaultSite, int],
    classifier,
    faultsim_wall_s: float = 0.0,
) -> int:
    """Publish per-fault entries, the meta blob and the netlist payload.

    Only called for clean campaigns (the caller gates on
    :func:`~repro.store.cache.clean_campaign`).  Every entry lands under
    both its aligned and its content key; the blob layer dedups the
    payload bytes.  Returns the number of index rows written.
    """
    netlist = system.netlist
    fp = netlist_fingerprint(netlist)
    pdigest = params_digest(netlist, config, observe, masks, stimulus.n_cycles)
    ctrl_fp = netlist_fingerprint(system.controller.netlist)
    ctx = classifier_context_digest(
        system.rtl, config.iteration_counts, classifier.hold_cycles
    )
    traces = golden_trace_digest(classifier)
    sites = [r.system_site for r in result.records]
    cones = compute_cones(netlist, sites)
    planes = run_golden(netlist, stimulus, observe, full=True).planes
    columns: dict[int, str] = {}
    names = netlist.net_names

    design = system.rtl.name
    rows: list[tuple] = []
    universe = []
    for record in result.records:
        site = record.system_site
        key = fault_key(site)
        universe.append(
            {
                "key": key,
                "gate": (
                    None
                    if site.gate_index is None
                    else netlist.gates[site.gate_index].name
                ),
                "pin": site.pin,
                "net": names[site.net],
                "value": site.value,
            }
        )
        payload = {
            "schema": SCHEMA_VERSION,
            "verdict": [record.simulation.value, detect_cycles.get(site, -1)],
            "classification": (
                None
                if record.classification is None
                else classification_to_json(record.classification)
            ),
            "classify_ctx": ctx,
            "ctrl_traces": traces,
            "ctrl_fp": ctrl_fp,
        }
        rows.append(
            ("fault-entry", aligned_entry_key(fp, pdigest, key), payload, design, None)
        )
        rows.append(
            (
                "fault-entry",
                content_entry_key(
                    pdigest, cone_content_hash(netlist, site, cones[site], planes, columns)
                ),
                payload,
                design,
                None,
            )
        )
    meta = {
        "schema": SCHEMA_VERSION,
        "design": design,
        "netlist": fp,
        "params": pdigest,
        "ctrl_fp": ctrl_fp,
        "classify_ctx": ctx,
        "ctrl_traces": traces,
        "faultsim_wall_s": faultsim_wall_s,
        "universe": universe,
    }
    rows.append(("incremental-meta", meta_store_key(fp, pdigest), meta, design, None))
    rows.append(
        (
            "netlist",
            netlist_store_key(fp),
            netlist_payload(netlist),
            design,
            {"fingerprint": fp},
        )
    )
    return store.publish_many(rows)
