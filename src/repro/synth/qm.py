"""Two-level minimisation: exact Quine-McCluskey with a heuristic fallback.

``minimize`` is the single entry point.  For input counts the exact method
can handle (default <= 12 variables) it computes all prime implicants and
solves the unate covering problem with essential-prime extraction followed
by a greedy completion.  Above that it falls back to a consensus/absorb
cleanup of the caller-provided seed cover (used for one-hot controllers,
where the exact method would enumerate 2^13+ minterms for little gain).

The minimiser fills don't-cares however suits cover size best -- *not* to
minimise datapath power -- which is exactly the (deliberate) choice the
paper made for its controllers (Section 6).
"""

from __future__ import annotations

from .cubes import Cube, cover_eval, irredundant, try_merge

EXACT_LIMIT = 12


def prime_implicants(n: int, onset: set[int], dcset: set[int]) -> list[Cube]:
    """All prime implicants of onset+dc via iterated distance-1 merging."""
    current = {Cube(m, (1 << n) - 1) for m in (onset | dcset)}
    primes: set[Cube] = set()
    while current:
        merged_from: set[Cube] = set()
        nxt: set[Cube] = set()
        by_care: dict[int, list[Cube]] = {}
        for c in current:
            by_care.setdefault(c.care, []).append(c)
        for group in by_care.values():
            by_ones: dict[int, list[Cube]] = {}
            for c in group:
                by_ones.setdefault(bin(c.value).count("1"), []).append(c)
            for k in sorted(by_ones):
                for a in by_ones[k]:
                    for b in by_ones.get(k + 1, ()):
                        m = try_merge(a, b)
                        if m is not None:
                            merged_from.add(a)
                            merged_from.add(b)
                            nxt.add(m)
        primes.update(c for c in current if c not in merged_from)
        current = nxt
    return sorted(primes)


def _select_cover(primes: list[Cube], onset: set[int]) -> list[Cube]:
    """Essential primes + greedy completion of the covering problem."""
    remaining = set(onset)
    chosen: list[Cube] = []
    covers_of: dict[int, list[Cube]] = {
        m: [p for p in primes if p.contains_minterm(m)] for m in onset
    }
    # Essential primes.
    for m, plist in covers_of.items():
        if len(plist) == 1 and plist[0] not in chosen:
            chosen.append(plist[0])
    for c in chosen:
        remaining = {m for m in remaining if not c.contains_minterm(m)}
    # Greedy: biggest marginal coverage, ties broken by fewer literals.
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.contains_minterm(m)), -p.num_literals()),
        )
        gain = sum(1 for m in remaining if best.contains_minterm(m))
        if gain == 0:
            raise AssertionError("uncoverable minterm -- prime generation bug")
        chosen.append(best)
        remaining = {m for m in remaining if not best.contains_minterm(m)}
    return chosen


def minimize_exact(n: int, onset: set[int], dcset: set[int]) -> list[Cube]:
    """Exact-ish QM: prime implicants + essential/greedy covering."""
    if not onset:
        return []
    full = set(range(1 << n))
    if onset | dcset == full:
        return [Cube(0, 0)]
    primes = prime_implicants(n, onset, dcset)
    return _select_cover(primes, onset)


def cleanup_cover(cover: list[Cube], onset: set[int], dcset: set[int]) -> list[Cube]:
    """Heuristic minimisation: absorb contained cubes, merge distance-1
    pairs when the merge stays inside onset+dc, then make irredundant."""
    cover = list(dict.fromkeys(cover))
    changed = True
    while changed:
        changed = False
        # Absorption.
        absorbed = []
        for i, c in enumerate(cover):
            if any(j != i and o.covers(c) and o != c for j, o in enumerate(cover)) or c in cover[:i]:
                continue
            absorbed.append(c)
        if len(absorbed) != len(cover):
            cover = absorbed
            changed = True
        # Distance-1 merging (care sets equal).
        for i in range(len(cover)):
            for j in range(i + 1, len(cover)):
                m = try_merge(cover[i], cover[j])
                if m is not None:
                    cover = [c for k, c in enumerate(cover) if k not in (i, j)] + [m]
                    changed = True
                    break
            if changed:
                break
    # With no onset information (heuristic one-hot path) redundancy cannot
    # be judged, so keep the absorbed/merged cover as is.
    return irredundant(cover, onset, dcset) if onset else cover


def minimize(
    n: int,
    onset: set[int],
    dcset: set[int],
    seed_cover: list[Cube] | None = None,
) -> list[Cube]:
    """Minimise a single-output function given as onset/dc minterm sets.

    Falls back to :func:`cleanup_cover` on ``seed_cover`` when ``n``
    exceeds :data:`EXACT_LIMIT` (a seed cover is then required).
    """
    if n <= EXACT_LIMIT:
        return minimize_exact(n, onset, dcset)
    if seed_cover is None:
        raise ValueError(f"{n} inputs exceeds exact limit and no seed cover given")
    return cleanup_cover(seed_cover, onset, dcset)


def verify_cover(n: int, cover: list[Cube], onset: set[int], offset: set[int]) -> bool:
    """Check a cover implements the function: covers onset, avoids offset."""
    return all(cover_eval(cover, m) for m in onset) and not any(
        cover_eval(cover, m) for m in offset
    )
