"""Technology mapping of two-level covers onto the gate library.

Maps a set of single-output SOP covers that share one ordered input
variable list onto NOT/AND/OR gates with bounded fan-in:

* one shared inverter per complemented variable;
* one AND per multi-literal cube (decomposed into a tree above
  ``max_fanin``);
* one OR per multi-cube cover, likewise decomposed;
* constants and single-literal covers get explicit CONST/BUF drivers so
  that every declared output net has a driving gate (and hence fault
  sites), as a real standard-cell netlist would.
"""

from __future__ import annotations

from ..netlist.builder import NetlistBuilder
from .cubes import Cube


def _tree(builder: NetlistBuilder, op, nets: list[int], max_fanin: int, out, tag: str):
    """Reduce ``nets`` with ``op`` gates of bounded fan-in; the final gate
    drives ``out`` when given."""
    level = list(nets)
    while len(level) > max_fanin:
        nxt = []
        for i in range(0, len(level), max_fanin):
            chunk = level[i : i + max_fanin]
            if len(chunk) == 1:
                nxt.append(chunk[0])
            else:
                nxt.append(op(chunk, tag=tag))
        level = nxt
    if len(level) == 1:
        if out is None:
            return level[0]
        return builder.buf_(level[0], output=out, tag=tag)
    return op(level, output=out, tag=tag)


def map_sop(
    builder: NetlistBuilder,
    var_nets: list[int],
    covers: dict[str, list[Cube]],
    out_nets: dict[str, int],
    max_fanin: int = 4,
    tag: str = "ctrl",
    share_inverters: bool = False,
) -> None:
    """Map every cover onto gates inside ``builder``.

    Args:
        builder: target netlist builder (gains the gates).
        var_nets: net ids of the SOP input variables, matching cube bit
            positions (bit ``i`` of a cube refers to ``var_nets[i]``).
        covers: output name -> SOP cover.
        out_nets: output name -> net id to drive.
        max_fanin: maximum gate fan-in before tree decomposition.
        tag: tag applied to all created gates.
        share_inverters: share one inverter per variable across *all*
            outputs.  The default (False) gives each output cone its own
            inverters, as a PLA-row / per-output standard-cell mapping
            would; this keeps stuck-at faults localised to one control
            line, which is the structure the paper's controllers exhibit.
    """
    shared: dict[int, int] = {}
    inverters: dict[int, int] = shared

    def literal_net(var: int, polarity: int) -> int:
        if polarity:
            return var_nets[var]
        if var not in inverters:
            inverters[var] = builder.not_(var_nets[var], tag=tag)
        return inverters[var]

    for name, cover in covers.items():
        if not share_inverters:
            inverters = {}
        out = out_nets[name]
        if not cover:
            builder.const0(output=out, tag=tag)
            continue
        if any(c.care == 0 for c in cover):
            builder.const1(output=out, tag=tag)
            continue
        cube_nets = []
        for cube in cover:
            lits = [literal_net(v, p) for v, p in cube.literals(len(var_nets))]
            if len(lits) == 1:
                cube_nets.append(lits[0])
            else:
                cube_nets.append(
                    _tree(builder, builder.and_, lits, max_fanin, None, tag)
                    if len(lits) > max_fanin
                    else builder.and_(lits, tag=tag)
                )
        _tree(builder, builder.or_, cube_nets, max_fanin, out, tag)
