"""Cube algebra for two-level logic.

A *cube* over ``n`` ordered binary variables is a product term.  It is
stored as two bit masks: ``care`` has a bit set for every variable that
appears as a literal, and ``value`` holds the polarity of those literals
(``value`` is always a subset of ``care``).  A cube with ``care == 0`` is
the universal cube (tautology).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Cube:
    """Product term over ``n`` variables as (value, care) masks."""

    value: int
    care: int

    def __post_init__(self):
        if self.value & ~self.care:
            raise ValueError("cube value bits must lie within care bits")

    @classmethod
    def from_string(cls, s: str) -> "Cube":
        """Parse a PLA-style cube string, e.g. ``"1-0"`` (var 0 leftmost)."""
        value = care = 0
        for i, ch in enumerate(s):
            if ch == "1":
                value |= 1 << i
                care |= 1 << i
            elif ch == "0":
                care |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(value, care)

    def to_string(self, n: int) -> str:
        """Render as a PLA-style string of length ``n``."""
        out = []
        for i in range(n):
            if not (self.care >> i) & 1:
                out.append("-")
            else:
                out.append("1" if (self.value >> i) & 1 else "0")
        return "".join(out)

    def contains_minterm(self, m: int) -> bool:
        """True if the minterm ``m`` lies inside this cube."""
        return (m & self.care) == self.value

    def covers(self, other: "Cube") -> bool:
        """True if this cube contains every minterm of ``other``."""
        if self.care & ~other.care:
            return False
        return (other.value & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True if the cubes share at least one minterm."""
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def literals(self, n: int) -> list[tuple[int, int]]:
        """List of (variable index, polarity) literals."""
        return [(i, (self.value >> i) & 1) for i in range(n) if (self.care >> i) & 1]

    def num_literals(self) -> int:
        return bin(self.care).count("1")

    def minterms(self, n: int):
        """Yield all minterms of this cube over ``n`` variables (small n)."""
        free = [i for i in range(n) if not (self.care >> i) & 1]
        for k in range(1 << len(free)):
            m = self.value
            for j, var in enumerate(free):
                if (k >> j) & 1:
                    m |= 1 << var
            yield m


def try_merge(a: Cube, b: Cube) -> Cube | None:
    """Distance-1 merge: same care set, values differing in exactly one bit."""
    if a.care != b.care:
        return None
    diff = a.value ^ b.value
    if diff == 0 or diff & (diff - 1):
        return None
    return Cube(a.value & ~diff, a.care & ~diff)


def cover_eval(cover: list[Cube], m: int) -> bool:
    """Evaluate an SOP cover on a minterm."""
    return any(c.contains_minterm(m) for c in cover)


def cover_minterms(cover: list[Cube], n: int) -> set[int]:
    """All minterms covered (small n only)."""
    out: set[int] = set()
    for c in cover:
        out.update(c.minterms(n))
    return out


def remove_contained(cover: list[Cube]) -> list[Cube]:
    """Drop cubes single-cube-contained in another cube of the cover."""
    kept: list[Cube] = []
    for i, c in enumerate(cover):
        if any(j != i and other.covers(c) for j, other in enumerate(cover)):
            # Keep the first of two identical cubes.
            if any(other == c for other in cover[:i]):
                continue
            if any(j != i and other != c and other.covers(c) for j, other in enumerate(cover)):
                continue
        kept.append(c)
    return kept


def irredundant(cover: list[Cube], onset: set[int], dcset: set[int]) -> list[Cube]:
    """Greedy irredundant cover: drop cubes whose onset minterms are covered
    by the rest (don't-cares need no cover)."""
    cover = list(cover)
    changed = True
    while changed:
        changed = False
        for i in range(len(cover)):
            rest = cover[:i] + cover[i + 1 :]
            needed = False
            for m in onset:
                if cover[i].contains_minterm(m) and not cover_eval(rest, m):
                    needed = True
                    break
            if not needed:
                cover = rest
                changed = True
                break
    return cover
