"""State encodings for FSM synthesis.

Three schemes are provided.  The paper's controllers came out of the
COMPASS FSM synthesizer (most likely minimum-length binary); the encoding
choice changes the gate structure and hence the stuck-at fault universe,
which bench ``bench_encoding`` sweeps as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fsm import FSM, FSMError


@dataclass
class Encoding:
    """Assignment of binary codes to FSM states."""

    kind: str
    n_bits: int
    codes: dict[str, int]

    def state_of(self, code: int) -> str | None:
        """Reverse lookup; None for invalid codes."""
        for s, c in self.codes.items():
            if c == code:
                return s
        return None

    def code_bits(self, state: str) -> list[int]:
        """LSB-first bit list for a state's code."""
        code = self.codes[state]
        return [(code >> i) & 1 for i in range(self.n_bits)]


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def encode(fsm: FSM, kind: str = "binary") -> Encoding:
    """Produce an :class:`Encoding` for ``fsm``.

    ``binary`` numbers states in declaration order; ``gray`` uses the
    reflected Gray sequence so consecutive control steps differ in one bit;
    ``onehot`` allocates one flip-flop per state.
    """
    n = len(fsm.states)
    if n == 0:
        raise FSMError("cannot encode an empty FSM")
    if kind == "binary":
        bits = max(1, (n - 1).bit_length())
        codes = {s: i for i, s in enumerate(fsm.states)}
    elif kind == "gray":
        bits = max(1, (n - 1).bit_length())
        codes = {s: _gray(i) for i, s in enumerate(fsm.states)}
    elif kind == "onehot":
        bits = n
        codes = {s: 1 << i for i, s in enumerate(fsm.states)}
    else:
        raise ValueError(f"unknown encoding kind {kind!r}")
    return Encoding(kind=kind, n_bits=bits, codes=codes)
