"""FSM -> gate-level controller synthesis.

The synthesized controller is a self-contained netlist:

* primary inputs: ``reset`` plus the FSM's status inputs;
* a bank of D flip-flops holding the encoded state;
* two-level (minimised SOP) next-state and Moore output logic;
* a synchronous-reset MUX2 per state bit (reset has priority and, being a
  known value, recovers the machine from the all-X power-up state in
  three-valued simulation exactly as a real reset recovers real silicon).

The fault universe of the paper ("faults within the controller") is the set
of collapsed stuck-at faults on the gates this module creates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import Netlist
from .cubes import Cube
from .encoding import Encoding, encode
from .fsm import FSM
from .mapper import map_sop
from .qm import EXACT_LIMIT, cleanup_cover, minimize_exact

RESET_NET = "reset"


@dataclass
class SynthesizedController:
    """A gate-level controller plus its symbolic provenance."""

    netlist: Netlist
    fsm: FSM
    encoding: Encoding
    input_nets: dict[str, int]
    output_nets: dict[str, int]
    state_nets: list[int]

    @property
    def reset_net(self) -> int:
        return self.input_nets[RESET_NET]

    def fault_gates(self):
        """Gates comprising the controller (the fault universe)."""
        return list(self.netlist.gates)


def _state_cube(encoding: Encoding, state: str, n_vars: int) -> Cube:
    """Cube asserting the state code on variables [0, n_bits)."""
    code = encoding.codes[state]
    n_bits = encoding.n_bits
    care = (1 << n_bits) - 1
    return Cube(code & care, care)


def _with_guard(base: Cube, guard, input_index: dict[str, int]) -> Cube:
    value, care = base.value, base.care
    for name, val in guard:
        bit = 1 << input_index[name]
        care |= bit
        if val:
            value |= bit
    return Cube(value, care)


def build_covers(fsm: FSM, encoding: Encoding, output_mode: str = "pla"):
    """Return (next-state covers, output covers) over the variable order
    ``state bits (LSB first) ++ fsm inputs``.

    ``output_mode`` controls how hard the Moore output covers are
    minimised: ``"pla"`` keeps one cube per asserting state, merged only
    where distance-1 merging is exact (an espresso-lite result typical of
    1990s FSM synthesis -- the structure whose stuck-at faults reproduce
    the paper's select-line phenomenology); ``"minimized"`` runs the full
    Quine-McCluskey don't-care fill.  Next-state logic is always fully
    minimised."""
    n_bits = encoding.n_bits
    n_vars = n_bits + len(fsm.input_names)
    input_index = {name: n_bits + i for i, name in enumerate(fsm.input_names)}

    ns_seed: dict[str, list[Cube]] = {f"ns{j}": [] for j in range(n_bits)}
    for t in fsm.transitions:
        dst_code = encoding.codes[t.dst]
        base = _state_cube(encoding, t.src, n_vars)
        cube = _with_guard(base, t.guard, input_index)
        for j in range(n_bits):
            if (dst_code >> j) & 1:
                ns_seed[f"ns{j}"].append(cube)

    out_seed: dict[str, list[Cube]] = {o: [] for o in fsm.output_names}
    for s in fsm.states:
        cube = _state_cube(encoding, s, n_vars)
        for o, val in fsm.outputs[s].items():
            if val == 1:
                out_seed[o].append(cube)

    # Minterm enumeration for exact minimisation.
    if n_vars <= EXACT_LIMIT:
        code_to_state = {encoding.codes[s]: s for s in fsm.states}
        state_mask = (1 << n_bits) - 1
        onsets: dict[str, set[int]] = {k: set() for k in list(ns_seed) + list(out_seed)}
        dcs: dict[str, set[int]] = {k: set() for k in onsets}
        for m in range(1 << n_vars):
            state = code_to_state.get(m & state_mask)
            if state is None:
                for k in onsets:
                    dcs[k].add(m)
                continue
            assign = {
                name: (m >> input_index[name]) & 1 for name in fsm.input_names
            }
            nxt = fsm.next_state(state, assign)
            nxt_code = encoding.codes[nxt]
            for j in range(n_bits):
                if (nxt_code >> j) & 1:
                    onsets[f"ns{j}"].add(m)
            for o, val in fsm.outputs[state].items():
                if val == 1:
                    onsets[o].add(m)
                elif val is None:
                    dcs[o].add(m)
        ns_covers = {k: minimize_exact(n_vars, onsets[k], dcs[k]) for k in ns_seed}
        if output_mode == "minimized":
            out_covers = {k: minimize_exact(n_vars, onsets[k], dcs[k]) for k in out_seed}
        else:
            out_covers = {k: cleanup_cover(v, onsets[k], dcs[k]) for k, v in out_seed.items()}
    else:
        # Heuristic path (one-hot encodings of big machines).
        ns_covers = {k: cleanup_cover(v, set(), set()) for k, v in ns_seed.items()}
        out_covers = {k: cleanup_cover(v, set(), set()) for k, v in out_seed.items()}
    return ns_covers, out_covers


def _map_decoded_outputs(
    b: NetlistBuilder,
    fsm: FSM,
    encoding: Encoding,
    state_nets: list[int],
    output_nets: dict[str, int],
    max_fanin: int,
    tag: str,
) -> None:
    """State-decoded Moore outputs: one shared decoder AND per state, one
    OR per control line.  Don't-care outputs synthesize to 0.  This is the
    per-state output plane a 1990s FSM synthesizer typically emitted."""
    from .mapper import _tree

    inverters = [
        b.not_(net, name=f"sdec_inv{j}", tag=tag) for j, net in enumerate(state_nets)
    ]
    decode: dict[str, int] = {}
    for s in fsm.states:
        bits = encoding.code_bits(s)
        lits = [state_nets[j] if bit else inverters[j] for j, bit in enumerate(bits)]
        decode[s] = _tree(b, b.and_, lits, max_fanin, None, tag) if len(lits) > max_fanin else b.and_(
            lits, name=f"dec_{s}", tag=tag
        )
    for o in fsm.output_names:
        terms = [decode[s] for s in fsm.states if fsm.outputs[s][o] == 1]
        out = output_nets[o]
        if not terms:
            b.const0(output=out, tag=tag)
        elif len(terms) == 1:
            b.buf_(terms[0], output=out, tag=tag)
        else:
            _tree(b, b.or_, terms, max_fanin, out, tag)


def synthesize_controller(
    fsm: FSM,
    encoding_kind: str = "binary",
    max_fanin: int = 4,
    tag: str = "ctrl",
    output_style: str = "pla",
) -> SynthesizedController:
    """Synthesize ``fsm`` into a gate-level controller netlist.

    ``output_style`` selects how Moore outputs are implemented:

    * ``"pla"`` (default) -- per-output two-level logic from one cube per
      asserting state, with only exact distance-1 merging.  Faults stay
      local to one control line and cube-widening faults can flip a select
      line in don't-care states only -- the structure behind the paper's
      select-only SFR population.
    * ``"decoded"`` -- a shared state decoder plus one OR per control
      line (don't-cares fall to 0; decoder faults touch many lines).
    * ``"minimized"`` -- full Quine-McCluskey don't-care fill per output.

    Next-state logic is always minimised.
    """
    fsm.validate()
    if output_style not in ("pla", "decoded", "minimized"):
        raise ValueError(f"unknown output_style {output_style!r}")
    encoding = encode(fsm, encoding_kind)
    n_bits = encoding.n_bits

    b = NetlistBuilder(name=f"{fsm.name}_ctrl")
    b.default_tag = tag
    reset = b.input(RESET_NET)
    input_nets = {RESET_NET: reset}
    for name in fsm.input_names:
        input_nets[name] = b.input(name)

    state_nets = b.bus("state", n_bits)
    var_nets = state_nets + [input_nets[name] for name in fsm.input_names]

    output_mode = "minimized" if output_style == "minimized" else "pla"
    ns_covers, out_covers = build_covers(fsm, encoding, output_mode=output_mode)

    ns_raw = b.bus("ns_raw", n_bits)
    map_sop(b, var_nets, ns_covers, {f"ns{j}": ns_raw[j] for j in range(n_bits)},
            max_fanin=max_fanin, tag=tag)

    output_nets = {o: b.net(o) for o in fsm.output_names}
    if output_style == "decoded":
        _map_decoded_outputs(b, fsm, encoding, state_nets, output_nets, max_fanin, tag)
    else:
        map_sop(b, var_nets, out_covers, output_nets, max_fanin=max_fanin, tag=tag)

    # Synchronous reset: next = reset ? reset_code : ns_raw.
    reset_code = encoding.codes[fsm.reset_state]
    const0 = const1 = None
    for j in range(n_bits):
        if (reset_code >> j) & 1:
            if const1 is None:
                const1 = b.const1(tag=tag)
            forced = const1
        else:
            if const0 is None:
                const0 = b.const0(tag=tag)
            forced = const0
        ns = b.mux2_(reset, ns_raw[j], forced, name=f"rstmux{j}", tag=tag)
        b.dff(ns, output=state_nets[j], name=f"state_ff{j}", tag=tag)

    for o in fsm.output_names:
        b.output(output_nets[o])

    netlist = b.done()
    return SynthesizedController(
        netlist=netlist,
        fsm=fsm,
        encoding=encoding,
        input_nets=input_nets,
        output_nets=output_nets,
        state_nets=state_nets,
    )
