"""synth subpackage."""
