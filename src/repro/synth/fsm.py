"""Symbolic Moore finite state machine model.

The controller emitted by high-level synthesis is a Moore machine: one
state per control step (plus RESET and HOLD), outputs = the control word
(register load lines and multiplexer select lines), transitions guarded by
primary-status inputs (``start``, and the loop condition bit fed back from
the datapath comparator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Transition:
    """Guarded edge: taken in ``src`` when every literal in ``guard``
    matches the current inputs (empty guard = unconditional)."""

    src: str
    guard: tuple[tuple[str, int], ...]
    dst: str

    def matches(self, assignment: dict[str, int]) -> bool:
        return all(assignment[name] == val for name, val in self.guard)


class FSMError(ValueError):
    """Raised for ill-formed machines."""


@dataclass
class FSM:
    """A deterministic, complete Moore machine."""

    name: str
    input_names: list[str]
    output_names: list[str]
    states: list[str]
    reset_state: str
    outputs: dict[str, dict[str, int | None]] = field(default_factory=dict)
    transitions: list[Transition] = field(default_factory=list)

    def add_state(self, name: str, outputs: dict[str, int | None]) -> None:
        """Register a state with its Moore output assignment.

        Missing output names default to don't-care (None)."""
        if name in self.outputs:
            raise FSMError(f"duplicate state {name!r}")
        unknown = set(outputs) - set(self.output_names)
        if unknown:
            raise FSMError(f"unknown outputs {sorted(unknown)} in state {name!r}")
        if name not in self.states:
            self.states.append(name)
        full = {o: None for o in self.output_names}
        full.update(outputs)
        self.outputs[name] = full

    def add_transition(self, src: str, dst: str, guard: dict[str, int] | None = None) -> None:
        guard = guard or {}
        unknown = set(guard) - set(self.input_names)
        if unknown:
            raise FSMError(f"unknown inputs {sorted(unknown)} in guard from {src!r}")
        self.transitions.append(Transition(src, tuple(sorted(guard.items())), dst))

    # ------------------------------------------------------------ validation
    def _input_space(self):
        for combo in itertools.product((0, 1), repeat=len(self.input_names)):
            yield dict(zip(self.input_names, combo))

    def validate(self) -> None:
        """Check every state has exactly one transition per input combo."""
        if self.reset_state not in self.states:
            raise FSMError(f"reset state {self.reset_state!r} not defined")
        for s in self.states:
            if s not in self.outputs:
                raise FSMError(f"state {s!r} has no output assignment")
            edges = [t for t in self.transitions if t.src == s]
            for assign in self._input_space():
                hits = [t for t in edges if t.matches(assign)]
                if len(hits) == 0:
                    raise FSMError(f"state {s!r} has no transition for {assign}")
                if len({t.dst for t in hits}) > 1:
                    raise FSMError(f"state {s!r} nondeterministic for {assign}")

    # ------------------------------------------------------------- semantics
    def next_state(self, state: str, assignment: dict[str, int]) -> str:
        for t in self.transitions:
            if t.src == state and t.matches(assignment):
                return t.dst
        raise FSMError(f"no transition from {state!r} under {assignment}")

    def output_vector(self, state: str) -> dict[str, int | None]:
        return dict(self.outputs[state])

    def simulate(self, input_seq: list[dict[str, int]]) -> list[tuple[str, dict[str, int | None]]]:
        """Run from reset; returns [(state, outputs)] including the initial
        state, one entry per input vector consumed."""
        trace = []
        state = self.reset_state
        for assign in input_seq:
            trace.append((state, self.output_vector(state)))
            state = self.next_state(state, assign)
        trace.append((state, self.output_vector(state)))
        return trace

    def reachable_states(self) -> set[str]:
        """States reachable from reset under some input sequence."""
        seen = {self.reset_state}
        frontier = [self.reset_state]
        while frontier:
            s = frontier.pop()
            for assign in self._input_space():
                nxt = self.next_state(s, assign)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen
