"""Resource-constrained list scheduling.

Operations are scheduled into control steps 1..T under per-kind functional
unit limits.  Constraints:

* data dependence: a consumer runs at least one step after its producer
  (results pass through a register; no chaining -- the paper's datapath
  style is mux -> ALU -> register, one operation per step per FU);
* anti-dependence: the op producing a loop variable's next value may not run
  before any reader of the old value (the update overwrites the register);
* the loop condition op is forced into the final control step so the
  comparator output feeds the controller exactly when the state transition
  is decided.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dfg import DFG, DFGError, Op, OpKind


@dataclass
class Schedule:
    """Result of scheduling: op name -> control step (1-based)."""

    steps: dict[str, int]
    n_steps: int

    def ops_in_step(self, dfg: DFG, step: int) -> list[Op]:
        return [o for o in dfg.ops if self.steps[o.name] == step]


def _dependency_edges(dfg: DFG):
    """Yield (pred, succ, min_delta) scheduling constraints."""
    op_names = {o.name for o in dfg.ops}
    for o in dfg.ops:
        for operand in (o.a, o.b):
            if operand in op_names:
                yield operand, o.name, 1
    # Anti-dependences for loop-carried updates.
    for var, producer in dfg.loop_updates.items():
        for reader in dfg.readers_of(var):
            if reader.name != producer:
                yield reader.name, producer, 0


def asap_steps(dfg: DFG) -> dict[str, int]:
    """Unconstrained earliest step per op (longest path)."""
    preds: dict[str, list[tuple[str, int]]] = {o.name: [] for o in dfg.ops}
    for pred, succ, delta in _dependency_edges(dfg):
        preds[succ].append((pred, delta))
    steps: dict[str, int] = {}

    def visit(name: str, stack: tuple = ()) -> int:
        if name in steps:
            return steps[name]
        if name in stack:
            raise DFGError(f"cyclic scheduling constraint through {name!r}")
        s = 1
        for pred, delta in preds[name]:
            s = max(s, visit(pred, stack + (name,)) + delta)
        steps[name] = s
        return s

    for o in dfg.ops:
        visit(o.name)
    return steps


def alap_steps(dfg: DFG, horizon: int) -> dict[str, int]:
    """Latest feasible step per op against a fixed horizon."""
    succs: dict[str, list[tuple[str, int]]] = {o.name: [] for o in dfg.ops}
    for pred, succ, delta in _dependency_edges(dfg):
        succs[pred].append((succ, delta))
    steps: dict[str, int] = {}

    def visit(name: str) -> int:
        if name in steps:
            return steps[name]
        s = horizon
        for succ, delta in succs[name]:
            s = min(s, visit(succ) - delta)
        steps[name] = s
        return s

    for o in dfg.ops:
        visit(o.name)
    return steps


def list_schedule(
    dfg: DFG,
    resources: dict[OpKind, int],
    force_cond_last: bool = True,
    cond_own_step: bool = True,
) -> Schedule:
    """List-schedule ``dfg`` under per-kind FU limits.

    Args:
        dfg: validated data-flow graph.
        resources: maximum simultaneous ops per :class:`OpKind`; kinds not
            listed default to 1 unit.
        force_cond_last: place the loop condition in the final step.
        cond_own_step: give the condition a dedicated final step (the
            paper's Diffeq evaluates its comparison in CS8 by itself).
    """
    dfg.validate()
    limit = {k: resources.get(k, 1) for k in OpKind}
    asap = asap_steps(dfg)
    horizon = max(asap.values(), default=1)
    alap = alap_steps(dfg, horizon)

    preds: dict[str, list[tuple[str, int]]] = {o.name: [] for o in dfg.ops}
    for pred, succ, delta in _dependency_edges(dfg):
        preds[succ].append((pred, delta))

    kind_of = {o.name: o.kind for o in dfg.ops}
    unscheduled = {o.name for o in dfg.ops}
    steps: dict[str, int] = {}
    step = 0
    while unscheduled:
        step += 1
        if step > 10 * (len(dfg.ops) + 1):
            raise DFGError("scheduler failed to converge (constraint cycle?)")
        used: dict[OpKind, int] = {k: 0 for k in OpKind}
        ready = []
        for name in unscheduled:
            ok = True
            for pred, delta in preds[name]:
                if pred not in steps or steps[pred] + delta > step:
                    ok = False
                    break
            if ok:
                ready.append(name)
        # Most urgent (smallest ALAP slack) first; name breaks ties stably.
        ready.sort(key=lambda n: (alap[n], n))
        for name in ready:
            k = kind_of[name]
            if used[k] < limit[k]:
                used[k] += 1
                steps[name] = step
                unscheduled.discard(name)

    n_steps = max(steps.values())
    if force_cond_last and dfg.loop_condition is not None:
        cond = dfg.loop_condition
        earliest = 1
        for pred, delta in preds[cond]:
            earliest = max(earliest, steps[pred] + delta)
        others_last = max((s for n, s in steps.items() if n != cond), default=0)
        target = max(others_last + 1, earliest) if cond_own_step else max(n_steps, earliest)
        # Respect the LT resource limit in the target step.
        while (
            sum(
                1
                for n, s in steps.items()
                if n != cond and s == target and kind_of[n] is kind_of[cond]
            )
            >= limit[kind_of[cond]]
        ):
            target += 1
        steps[cond] = target
        n_steps = max(n_steps, target)
    return Schedule(steps=steps, n_steps=n_steps)
