"""Functional unit allocation.

Single-function FUs in the paper's datapath style: for each operation kind
the allocator provides exactly as many units as the schedule ever uses
simultaneously.  Units are named ``MUL1, MUL2, ADD1, ...``.
"""

from __future__ import annotations

from .dfg import DFG, OpKind
from .schedule import Schedule

_KIND_PREFIX = {
    OpKind.ADD: "ADD",
    OpKind.SUB: "SUB",
    OpKind.MUL: "MUL",
    OpKind.LT: "CMP",
    OpKind.AND: "LAND",
    OpKind.OR: "LOR",
    OpKind.XOR: "LXOR",
}


def allocate_fus(dfg: DFG, schedule: Schedule) -> dict[OpKind, list[str]]:
    """Return kind -> list of FU instance names sized to peak usage."""
    peak: dict[OpKind, int] = {}
    for step in range(1, schedule.n_steps + 1):
        per_kind: dict[OpKind, int] = {}
        for op in schedule.ops_in_step(dfg, step):
            per_kind[op.kind] = per_kind.get(op.kind, 0) + 1
        for kind, count in per_kind.items():
            peak[kind] = max(peak.get(kind, 0), count)
    return {
        kind: [f"{_KIND_PREFIX[kind]}{i + 1}" for i in range(count)]
        for kind, count in sorted(peak.items(), key=lambda kv: kv[0].value)
    }
