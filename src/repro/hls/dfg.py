"""Data-flow graph capture for the SYNTEST-like high-level synthesis flow.

A :class:`DFG` describes one behaviour: a DAG of two-operand operations over
primary inputs and constants, an optional while-loop (condition operation
plus loop-carried variable updates), and named output ports.  The three
benchmark designs of the paper (Diffeq, Facet, Poly) are captured in
:mod:`repro.designs` as DFGs and pushed through scheduling, binding and
elaboration to produce the controller-datapath pairs under test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    LT = "<"
    AND = "&"
    OR = "|"
    XOR = "^"


#: Kinds whose result does not depend on operand order.
COMMUTATIVE = frozenset({OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR, OpKind.XOR})


@dataclass(frozen=True)
class Op:
    """A single two-operand operation; ``name`` doubles as its result value."""

    name: str
    kind: OpKind
    a: str
    b: str


class DFGError(ValueError):
    """Raised for malformed data-flow graphs."""


@dataclass
class DFG:
    """A behaviour to synthesize.

    Attributes:
        name: design name.
        width: datapath bit width.
        inputs: primary data inputs (each gets an input register).
        constants: named constant values (hardwired, no register).
        ops: operations in any topological-friendly order.
        outputs: port name -> value name observed after completion.
        loop_condition: op whose LSB feeds the controller as ``cond``
            (None for straight-line behaviours).
        loop_updates: loop variable (must be an input) -> op producing its
            next-iteration value.
    """

    name: str
    width: int
    inputs: list[str]
    constants: dict[str, int] = field(default_factory=dict)
    ops: list[Op] = field(default_factory=list)
    outputs: dict[str, str] = field(default_factory=dict)
    loop_condition: str | None = None
    loop_updates: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------ structure
    def op(self, name: str, kind: OpKind, a: str, b: str) -> str:
        """Append an operation; returns its value name for chaining."""
        self.ops.append(Op(name, OpKind(kind), a, b))
        return name

    def op_by_name(self, name: str) -> Op:
        for o in self.ops:
            if o.name == name:
                return o
        raise DFGError(f"no op named {name!r}")

    def value_names(self) -> set[str]:
        return set(self.inputs) | set(self.constants) | {o.name for o in self.ops}

    def is_loop(self) -> bool:
        return self.loop_condition is not None

    def loop_vars(self) -> list[str]:
        return list(self.loop_updates)

    def readers_of(self, value: str) -> list[Op]:
        """Ops consuming ``value`` as an operand."""
        return [o for o in self.ops if o.a == value or o.b == value]

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        names = self.value_names()
        seen: set[str] = set(self.inputs) | set(self.constants)
        if len(names) != len(self.inputs) + len(self.constants) + len(self.ops):
            raise DFGError("value names must be unique across inputs/constants/ops")
        for o in self.ops:
            for operand in (o.a, o.b):
                if operand not in names:
                    raise DFGError(f"op {o.name!r} references unknown value {operand!r}")
                if operand not in seen and operand != o.name:
                    # allow only backward refs (ops listed topologically)
                    raise DFGError(f"op {o.name!r} reads {operand!r} before definition")
            seen.add(o.name)
        for port, val in self.outputs.items():
            if val not in names:
                raise DFGError(f"output {port!r} references unknown value {val!r}")
        if self.loop_condition is not None:
            self.op_by_name(self.loop_condition)
            if not self.loop_updates:
                raise DFGError("a loop needs at least one loop-carried update")
        for var, producer in self.loop_updates.items():
            if var not in self.inputs:
                raise DFGError(f"loop variable {var!r} must be a primary input")
            self.op_by_name(producer)
        for name, value in self.constants.items():
            if not 0 <= value < (1 << self.width):
                raise DFGError(f"constant {name!r}={value} does not fit in {self.width} bits")

    def eval_once(self, env: dict[str, int]) -> dict[str, int]:
        """Reference semantics: evaluate the body once over ``env``.

        Returns the environment extended with every op result (modulo
        2**width; LT yields 0/1).  Used by tests and the reference model.
        """
        mask = (1 << self.width) - 1
        vals = dict(env)
        for cname, cval in self.constants.items():
            vals[cname] = cval
        for o in self.ops:
            a, b = vals[o.a], vals[o.b]
            if o.kind is OpKind.ADD:
                r = (a + b) & mask
            elif o.kind is OpKind.SUB:
                r = (a - b) & mask
            elif o.kind is OpKind.MUL:
                r = (a * b) & mask
            elif o.kind is OpKind.LT:
                r = int(a < b)
            elif o.kind is OpKind.AND:
                r = a & b
            elif o.kind is OpKind.OR:
                r = a | b
            else:
                r = a ^ b
            vals[o.name] = r
        return vals

    def execute(self, env: dict[str, int], max_iterations: int = 64) -> tuple[dict[str, int], int]:
        """Reference semantics including the loop.

        Returns (output port values, iteration count).  Iteration is capped
        (4-bit arithmetic can loop forever for some data).
        """
        self.validate()
        state = {name: env[name] for name in self.inputs}
        iterations = 0
        while True:
            vals = self.eval_once(state)
            iterations += 1
            if self.loop_condition is None:
                break
            for var, producer in self.loop_updates.items():
                state[var] = vals[producer]
            if not vals[self.loop_condition] or iterations >= max_iterations:
                break
        # A loop variable's register holds the *post-update* value once the
        # machine reaches HOLD, so output ports naming a loop variable read
        # the updated state, not the value it had going into the last pass.
        outs = {
            port: (state[val] if val in self.loop_updates else vals[val])
            for port, val in self.outputs.items()
        }
        return outs, iterations
