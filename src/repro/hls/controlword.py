"""Control table -> symbolic FSM.

Turns an :class:`~repro.hls.rtl.RTLDesign`'s control table into the Moore
machine the controller synthesizer consumes.  The machine has a ``start``
input, a ``cond`` input when the behaviour loops (fed combinationally from
the datapath comparator in the final control step), and one output per
control line.  Don't-care selects stay don't-care -- the logic minimiser
fills them, deliberately *not* optimised for datapath power, matching the
paper's experimental setup.
"""

from __future__ import annotations

from ..synth.fsm import FSM
from .rtl import HOLD_STATE, RESET_STATE, RTLDesign, cs_state

START_INPUT = "start"
COND_INPUT = "cond"


def build_fsm(rtl: RTLDesign) -> FSM:
    """Create the controller FSM for an RTL design."""
    inputs = [START_INPUT] + ([COND_INPUT] if rtl.cond_fu else [])
    outputs = list(rtl.load_lines) + list(rtl.sel_lines)
    fsm = FSM(
        name=rtl.name,
        input_names=inputs,
        output_names=outputs,
        states=[],
        reset_state=RESET_STATE,
    )
    for state in rtl.states:
        word: dict[str, int | None] = {}
        word.update(rtl.control.loads[state])
        word.update(rtl.control.selects[state])
        fsm.add_state(state, word)

    n = rtl.schedule.n_steps
    fsm.add_transition(RESET_STATE, cs_state(1), {START_INPUT: 1})
    fsm.add_transition(RESET_STATE, RESET_STATE, {START_INPUT: 0})
    for step in range(1, n):
        fsm.add_transition(cs_state(step), cs_state(step + 1))
    if rtl.cond_fu:
        fsm.add_transition(cs_state(n), cs_state(1), {COND_INPUT: 1})
        fsm.add_transition(cs_state(n), HOLD_STATE, {COND_INPUT: 0})
    else:
        fsm.add_transition(cs_state(n), HOLD_STATE)
    fsm.add_transition(HOLD_STATE, HOLD_STATE)
    fsm.validate()
    return fsm
