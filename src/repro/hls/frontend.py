"""Tiny behavioural front end: text -> data-flow graph.

SYNTEST consumed behavioural descriptions; this module provides the same
convenience for the reproduction.  The language is line-oriented:

.. code-block:: text

    # forward-Euler differential equation solver
    design diffeq
    width 4
    inputs x y u dx a
    const three 3
    m1 = three * x
    m2 = m1 * u
    x1 = x + dx
    c  = x1 < a
    loop c
    update x x1
    output y_out y

Statements:

* ``design NAME`` / ``width N`` -- header (optional; defaults apply);
* ``inputs A B C`` -- primary data inputs;
* ``const NAME VALUE`` -- named constant;
* ``R = A op B`` with op in ``+ - * < & | ^`` -- one operation;
* ``loop COND`` -- run the body while op ``COND``'s result is 1;
* ``update VAR VALUE`` -- loop-carried assignment at end of each pass;
* ``output PORT VALUE`` -- observed result;
* ``#`` starts a comment.

``format_behavior`` is the inverse; parse/format round-trips are tested.
"""

from __future__ import annotations

import re

from .dfg import DFG, DFGError, OpKind

_OP_BY_SYMBOL = {k.value: k for k in OpKind}

_ASSIGN_RE = re.compile(
    r"^(?P<dst>\w+)\s*=\s*(?P<a>\w+)\s*(?P<op>[-+*<&|^])\s*(?P<b>\w+)$"
)


class BehaviorSyntaxError(ValueError):
    """Raised with a line number for unparseable input."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def parse_behavior(text: str, name: str = "design", width: int = 4) -> DFG:
    """Parse the behavioural language into a validated :class:`DFG`."""
    dfg = DFG(name=name, width=width, inputs=[])
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        head, _, rest = line.partition(" ")
        rest = rest.strip()
        if head == "design":
            if not rest:
                raise BehaviorSyntaxError(lineno, "design needs a name")
            dfg.name = rest
        elif head == "width":
            try:
                dfg.width = int(rest)
            except ValueError:
                raise BehaviorSyntaxError(lineno, f"bad width {rest!r}") from None
        elif head == "inputs":
            names = rest.split()
            if not names:
                raise BehaviorSyntaxError(lineno, "inputs needs at least one name")
            dfg.inputs.extend(names)
        elif head == "const":
            parts = rest.split()
            if len(parts) != 2:
                raise BehaviorSyntaxError(lineno, "const NAME VALUE")
            try:
                dfg.constants[parts[0]] = int(parts[1], 0)
            except ValueError:
                raise BehaviorSyntaxError(lineno, f"bad constant {parts[1]!r}") from None
        elif head == "loop":
            if not rest or len(rest.split()) != 1:
                raise BehaviorSyntaxError(lineno, "loop COND")
            dfg.loop_condition = rest
        elif head == "update":
            parts = rest.split()
            if len(parts) != 2:
                raise BehaviorSyntaxError(lineno, "update VAR VALUE")
            dfg.loop_updates[parts[0]] = parts[1]
        elif head == "output":
            parts = rest.split()
            if len(parts) != 2:
                raise BehaviorSyntaxError(lineno, "output PORT VALUE")
            dfg.outputs[parts[0]] = parts[1]
        else:
            m = _ASSIGN_RE.match(line)
            if not m:
                raise BehaviorSyntaxError(lineno, f"unparseable statement {line!r}")
            dfg.op(m["dst"], _OP_BY_SYMBOL[m["op"]], m["a"], m["b"])
    try:
        dfg.validate()
    except DFGError as exc:
        raise BehaviorSyntaxError(0, str(exc)) from exc
    return dfg


def format_behavior(dfg: DFG) -> str:
    """Render a DFG back into the behavioural language."""
    lines = [f"design {dfg.name}", f"width {dfg.width}"]
    if dfg.inputs:
        lines.append("inputs " + " ".join(dfg.inputs))
    for cname, val in dfg.constants.items():
        lines.append(f"const {cname} {val}")
    for op in dfg.ops:
        lines.append(f"{op.name} = {op.a} {op.kind.value} {op.b}")
    if dfg.loop_condition:
        lines.append(f"loop {dfg.loop_condition}")
    for var, producer in dfg.loop_updates.items():
        lines.append(f"update {var} {producer}")
    for port, value in dfg.outputs.items():
        lines.append(f"output {port} {value}")
    return "\n".join(lines) + "\n"
