"""Register-transfer-level design model.

This is the pivotal structure of the reproduction: everything the paper's
analysis needs lives here --

* the structural datapath (registers, functional units, multiplexers and
  their source lists) in the paper's mux -> ALU -> register style;
* the control table: per control state, the value of every register load
  line and multiplexer select line, with explicit don't-cares (Section 3's
  "care"/"don't care" select specifications);
* binding metadata: which value lives in which register when, which op runs
  on which FU in which step -- the raw material for variable lifespan
  analysis and SFR/SFI classification.

States are named ``RESET, CS1..CSn, HOLD`` exactly as in the paper's
differential equation example (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dfg import DFG, OpKind
from .schedule import Schedule

RESET_STATE = "RESET"
HOLD_STATE = "HOLD"


def state_names(n_steps: int) -> list[str]:
    """RESET, CS1..CSn, HOLD."""
    return [RESET_STATE] + [f"CS{i}" for i in range(1, n_steps + 1)] + [HOLD_STATE]


def cs_state(step: int) -> str:
    return f"CS{step}"


@dataclass(frozen=True)
class Source:
    """One selectable data source.

    ``kind`` is one of ``'input'`` (primary input port), ``'const'``
    (hardwired constant), ``'fu'`` (functional unit output) or ``'reg'``
    (register output).  FU port muxes read registers/constants; register
    input muxes read FU outputs or the input port."""

    kind: str  # 'input' | 'const' | 'fu' | 'reg'
    ref: str

    def label(self) -> str:
        return f"{self.kind}:{self.ref}"


@dataclass
class MuxSpec:
    """A multiplexer (possibly degenerate with one source).

    ``sel_names`` lists the select control lines LSB-first; selecting source
    ``i`` drives the bits of ``i`` onto those lines.
    """

    name: str
    sources: list[Source]
    sel_names: list[str] = field(default_factory=list)

    @property
    def n_sel_bits(self) -> int:
        n = len(self.sources)
        return 0 if n <= 1 else (n - 1).bit_length()

    def source_index(self, source: Source) -> int:
        return self.sources.index(source)

    def sel_bits_for(self, index: int) -> dict[str, int]:
        """Control-line assignment that selects source ``index``."""
        return {name: (index >> bit) & 1 for bit, name in enumerate(self.sel_names)}


@dataclass
class RegisterSpec:
    """A datapath register with its load line and input mux."""

    name: str
    load_line: str
    input_mux: MuxSpec
    holds: list[str] = field(default_factory=list)


@dataclass
class FUSpec:
    """A single-function functional unit with two input port muxes."""

    name: str
    kind: OpKind
    mux_a: MuxSpec
    mux_b: MuxSpec


@dataclass
class OpBinding:
    """Where and when one DFG op executes."""

    op: str
    fu: str
    step: int
    dest_register: str | None  # None for the loop condition


@dataclass
class ControlTable:
    """Fully scheduled control specification with explicit don't-cares."""

    states: list[str]
    loads: dict[str, dict[str, int]]
    selects: dict[str, dict[str, int | None]]

    def control_lines(self) -> list[str]:
        first = self.states[0]
        return list(self.loads[first]) + list(self.selects[first])

    def line_value(self, state: str, line: str) -> int | None:
        if line in self.loads[state]:
            return self.loads[state][line]
        return self.selects[state][line]


@dataclass
class RTLDesign:
    """The bound RTL datapath plus its control table and metadata."""

    name: str
    width: int
    dfg: DFG
    schedule: Schedule
    registers: list[RegisterSpec]
    fus: list[FUSpec]
    bindings: dict[str, OpBinding]
    value_reg: dict[str, str]
    load_lines: list[str]
    sel_lines: list[str]
    regs_on_line: dict[str, list[str]]
    control: ControlTable
    outputs: dict[str, str]  # port -> register
    cond_fu: str | None = None
    cond_step: int | None = None

    # ------------------------------------------------------------- lookups
    def register(self, name: str) -> RegisterSpec:
        for r in self.registers:
            if r.name == name:
                return r
        raise KeyError(name)

    def fu(self, name: str) -> FUSpec:
        for f in self.fus:
            if f.name == name:
                return f
        raise KeyError(name)

    def all_muxes(self) -> list[MuxSpec]:
        out = []
        for f in self.fus:
            out.extend([f.mux_a, f.mux_b])
        for r in self.registers:
            out.append(r.input_mux)
        return out

    def mux_of_sel(self, sel_name: str) -> MuxSpec:
        for m in self.all_muxes():
            if sel_name in m.sel_names:
                return m
        raise KeyError(sel_name)

    def line_of_register(self, reg_name: str) -> str:
        return self.register(reg_name).load_line

    @property
    def states(self) -> list[str]:
        return self.control.states

    # --------------------------------------------------------- activity info
    def ops_in_state(self, state: str):
        """Op bindings executing in a CS state (empty for RESET/HOLD)."""
        if not state.startswith("CS"):
            return []
        step = int(state[2:])
        return [b for b in self.bindings.values() if b.step == step]

    def mux_active_states(self, mux: MuxSpec) -> set[str]:
        """States in which the mux's output is consumed (its selects are
        "cares"): FU port muxes when an op on that FU executes; register
        input muxes when the register loads."""
        active: set[str] = set()
        for f in self.fus:
            if mux.name in (f.mux_a.name, f.mux_b.name):
                for b in self.bindings.values():
                    if b.fu == f.name:
                        active.add(cs_state(b.step))
                return active
        for r in self.registers:
            if mux.name == r.input_mux.name:
                for state in self.states:
                    if self.control.loads[state].get(r.load_line):
                        # A shared line may load several registers; the mux
                        # is active whenever its register's line is high.
                        active.add(state)
                return active
        raise KeyError(mux.name)

    def reg_load_states(self, reg_name: str) -> set[str]:
        line = self.line_of_register(reg_name)
        return {s for s in self.states if self.control.loads[s].get(line)}

    def reg_read_states(self, reg_name: str) -> set[str]:
        """States in which the register's output is consumed: an executing
        op reads one of its values, or (for output registers) a HOLD
        observation."""
        reads: set[str] = set()
        for b in self.bindings.values():
            op = self.dfg.op_by_name(b.op)
            for operand in (op.a, op.b):
                if self.value_reg.get(operand) == reg_name:
                    reads.add(cs_state(b.step))
        if reg_name in self.outputs.values():
            reads.add(HOLD_STATE)
        return reads

    def summary(self) -> str:
        """One-paragraph structural summary (mirrors the paper's prose)."""
        n_sel = len(self.sel_lines)
        return (
            f"{self.name}: {len(self.registers)} registers on "
            f"{len(self.load_lines)} load lines, {n_sel} mux select lines, "
            f"{len(self.fus)} FUs, {self.schedule.n_steps} control steps "
            f"({len(self.states)} states incl. RESET/HOLD)"
        )
