"""Binding: registers (left-edge), FU instances, muxes, control table.

Produces the complete :class:`~repro.hls.rtl.RTLDesign` from a scheduled
DFG.  Register policy (chosen to match the paper's example structure --
the 4-bit Diffeq has 11 registers and 7 mux select lines):

* every loop-carried variable gets a dedicated register, loaded from the
  input port in RESET and from its update op's FU in the update step;
* every other primary input gets a dedicated register loaded in RESET;
* temporaries (op results) share registers by left-edge allocation on
  their lifetime intervals; values routed to an output port persist
  through HOLD and so block their register from later reuse.

Load lines map one-to-one onto registers unless ``share_load_lines`` is
set, in which case registers with identical load schedules share one line
(the Facet example's "several sets of registers that load in parallel").
"""

from __future__ import annotations

from .allocate import allocate_fus
from .dfg import DFG, DFGError
from .rtl import (
    HOLD_STATE,
    RESET_STATE,
    ControlTable,
    FUSpec,
    MuxSpec,
    OpBinding,
    RTLDesign,
    RegisterSpec,
    Source,
    cs_state,
    state_names,
)
from .schedule import Schedule

_INFINITY = 10**9


def _bind_fus(dfg: DFG, schedule: Schedule, fu_names) -> dict[str, OpBinding]:
    """Assign each op to a concrete FU instance (dest filled in later)."""
    bindings: dict[str, OpBinding] = {}
    for step in range(1, schedule.n_steps + 1):
        used: dict = {}
        for op in sorted(schedule.ops_in_step(dfg, step), key=lambda o: o.name):
            slot = used.get(op.kind, 0)
            used[op.kind] = slot + 1
            bindings[op.name] = OpBinding(op=op.name, fu=fu_names[op.kind][slot], step=step, dest_register=None)
    return bindings


def _value_intervals(dfg: DFG, schedule: Schedule):
    """Lifetime interval (def_step, last_use_step) per temp value."""
    update_values = set(dfg.loop_updates.values())
    output_values = set(dfg.outputs.values())
    intervals: dict[str, tuple[int, int]] = {}
    for op in dfg.ops:
        if op.name == dfg.loop_condition or op.name in update_values:
            continue
        def_step = schedule.steps[op.name]
        readers = dfg.readers_of(op.name)
        if not readers and op.name not in output_values:
            raise DFGError(f"op {op.name!r} result is never used")
        last = _INFINITY if op.name in output_values else max(
            schedule.steps[r.name] for r in readers
        )
        intervals[op.name] = (def_step, last)
    return intervals


def _left_edge(intervals: dict[str, tuple[int, int]]) -> list[list[str]]:
    """Pack intervals into a minimal register count (left-edge algorithm).

    Value A (def a0, last a1) and B (def b0 >= a0) may share a register iff
    a1 < b0: A's last read strictly precedes the step at whose end B is
    written.  (Same-step write-after-read reuse would be functionally legal
    in this datapath style, but real allocators -- SYNTEST included --
    avoid it; the stricter rule also reproduces the paper's register
    counts.)"""
    order = sorted(intervals, key=lambda v: (intervals[v][0], intervals[v][1], v))
    registers: list[list[str]] = []
    reg_last: list[int] = []
    for value in order:
        d, last = intervals[value]
        placed = False
        for i, busy_until in enumerate(reg_last):
            if busy_until < d:
                registers[i].append(value)
                reg_last[i] = last
                placed = True
                break
        if not placed:
            registers.append([value])
            reg_last.append(last)
    return registers


def bind_design(dfg: DFG, schedule: Schedule, share_load_lines: bool = False) -> RTLDesign:
    """Produce the full RTL design (structure + control table) for ``dfg``."""
    dfg.validate()
    fu_names = allocate_fus(dfg, schedule)
    bindings = _bind_fus(dfg, schedule, fu_names)
    update_of = {producer: var for var, producer in dfg.loop_updates.items()}

    # ----- register sets, in REG1.. order ---------------------------------
    loop_vars = [v for v in dfg.inputs if v in dfg.loop_updates]
    plain_inputs = [v for v in dfg.inputs if v not in dfg.loop_updates]
    temp_groups = _left_edge(_value_intervals(dfg, schedule))

    value_reg: dict[str, str] = {}
    reg_specs: list[tuple[str, list[Source], list[str]]] = []  # (name, sources, holds)
    idx = 0

    def next_reg() -> str:
        nonlocal idx
        idx += 1
        return f"REG{idx}"

    for var in loop_vars:
        name = next_reg()
        producer = dfg.loop_updates[var]
        fu = bindings[producer].fu
        sources = [Source("input", var), Source("fu", fu)]
        value_reg[var] = name
        value_reg[producer] = name
        reg_specs.append((name, sources, [var, producer]))
    for var in plain_inputs:
        name = next_reg()
        value_reg[var] = name
        reg_specs.append((name, [Source("input", var)], [var]))
    for group in temp_groups:
        name = next_reg()
        sources: list[Source] = []
        for value in group:
            value_reg[value] = name
            src = Source("fu", bindings[value].fu)
            if src not in sources:
                sources.append(src)
        reg_specs.append((name, sources, list(group)))

    # Fill binding destinations.
    for op in dfg.ops:
        if op.name == dfg.loop_condition:
            continue
        bindings[op.name].dest_register = value_reg[op.name]

    # ----- FU port muxes ---------------------------------------------------
    def operand_source(value: str) -> Source:
        if value in dfg.constants:
            return Source("const", value)
        return Source("reg", value_reg[value])

    fus: list[FUSpec] = []
    for kind in fu_names:
        for fu in fu_names[kind]:
            src_a: list[Source] = []
            src_b: list[Source] = []
            for b in sorted(bindings.values(), key=lambda bb: (bb.step, bb.op)):
                if b.fu != fu:
                    continue
                op = dfg.op_by_name(b.op)
                for src_list, operand in ((src_a, op.a), (src_b, op.b)):
                    s = operand_source(operand)
                    if s not in src_list:
                        src_list.append(s)
            fus.append(
                FUSpec(
                    name=fu,
                    kind=kind,
                    mux_a=MuxSpec(name=f"{fu}.a", sources=src_a),
                    mux_b=MuxSpec(name=f"{fu}.b", sources=src_b),
                )
            )

    registers = [
        RegisterSpec(
            name=name,
            load_line="",  # assigned below
            input_mux=MuxSpec(name=f"{name}.in", sources=sources),
            holds=holds,
        )
        for name, sources, holds in reg_specs
    ]

    # ----- select line naming (MS1..) --------------------------------------
    sel_lines: list[str] = []
    for mux in [m for f in fus for m in (f.mux_a, f.mux_b)] + [r.input_mux for r in registers]:
        for _ in range(mux.n_sel_bits):
            sel = f"MS{len(sel_lines) + 1}"
            sel_lines.append(sel)
            mux.sel_names.append(sel)

    # ----- register load schedules -----------------------------------------
    states = state_names(schedule.n_steps)
    load_states: dict[str, set[str]] = {r.name: set() for r in registers}
    for var in loop_vars + plain_inputs:
        load_states[value_reg[var]].add(RESET_STATE)
    for op in dfg.ops:
        if op.name == dfg.loop_condition:
            continue
        load_states[value_reg[op.name]].add(cs_state(schedule.steps[op.name]))

    # ----- load line assignment --------------------------------------------
    regs_on_line: dict[str, list[str]] = {}
    if share_load_lines:
        groups: dict[tuple, list[str]] = {}
        for r in registers:
            key = tuple(sorted(load_states[r.name]))
            groups.setdefault(key, []).append(r.name)
        for i, key in enumerate(sorted(groups), start=1):
            line = f"LD{i}"
            regs_on_line[line] = groups[key]
            for rname in groups[key]:
                next(r for r in registers if r.name == rname).load_line = line
    else:
        for i, r in enumerate(registers, start=1):
            line = f"LD{i}"
            r.load_line = line
            regs_on_line[line] = [r.name]
    load_lines = sorted(regs_on_line, key=lambda s: int(s[2:]))

    # ----- control table ----------------------------------------------------
    loads = {
        state: {
            line: int(any(state in load_states[r] for r in regs_on_line[line]))
            for line in load_lines
        }
        for state in states
    }
    selects: dict[str, dict[str, int | None]] = {
        state: {sel: None for sel in sel_lines} for state in states
    }

    def set_mux(state: str, mux: MuxSpec, index: int) -> None:
        for sel, bit in mux.sel_bits_for(index).items():
            prev = selects[state][sel]
            if prev is not None and prev != bit:
                raise DFGError(f"select conflict on {sel} in {state}")
            selects[state][sel] = bit

    reg_by_name = {r.name: r for r in registers}
    for var in loop_vars + plain_inputs:
        reg = reg_by_name[value_reg[var]]
        set_mux(RESET_STATE, reg.input_mux, reg.input_mux.sources.index(Source("input", var)))
    fu_by_name = {f.name: f for f in fus}
    for b in bindings.values():
        state = cs_state(b.step)
        op = dfg.op_by_name(b.op)
        fu = fu_by_name[b.fu]
        set_mux(state, fu.mux_a, fu.mux_a.sources.index(operand_source(op.a)))
        set_mux(state, fu.mux_b, fu.mux_b.sources.index(operand_source(op.b)))
        if b.dest_register is not None:
            reg = reg_by_name[b.dest_register]
            set_mux(state, reg.input_mux, reg.input_mux.sources.index(Source("fu", b.fu)))

    control = ControlTable(states=states, loads=loads, selects=selects)
    cond = dfg.loop_condition
    return RTLDesign(
        name=dfg.name,
        width=dfg.width,
        dfg=dfg,
        schedule=schedule,
        registers=registers,
        fus=fus,
        bindings=bindings,
        value_reg=value_reg,
        load_lines=load_lines,
        sel_lines=sel_lines,
        regs_on_line=regs_on_line,
        control=control,
        outputs={port: value_reg[val] for port, val in dfg.outputs.items()},
        cond_fu=bindings[cond].fu if cond else None,
        cond_step=bindings[cond].step if cond else None,
    )
