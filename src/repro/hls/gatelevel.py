"""RTL -> gate-level elaboration of the datapath.

Expands the :class:`~repro.hls.rtl.RTLDesign` structure into the gate
library: MUX2 trees for multiplexers, ripple-carry adders/subtractors, a
truncated array multiplier, an unsigned magnitude comparator, bitwise
logic units, and enable-gated flip-flops (DFFE) for the registers.

All control lines (register load lines and mux select lines) are primary
inputs of the produced netlist, so the datapath can be driven either by a
synthesized controller (via :mod:`repro.hls.system`) or directly by a
testbench.  Gates are tagged ``dp:<component>`` for per-component power
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import Netlist
from .dfg import OpKind
from .rtl import MuxSpec, RTLDesign, Source

COND_OUT = "cond_out"


@dataclass
class DatapathNets:
    """The elaborated datapath and its interface nets."""

    netlist: Netlist
    control_nets: dict[str, int]
    input_buses: dict[str, list[int]]
    output_buses: dict[str, list[int]]
    reg_q: dict[str, list[int]]
    cond_net: int | None = None
    fu_out: dict[str, list[int]] = field(default_factory=dict)


def _ripple_add(b: NetlistBuilder, a, bb, cin, tag, with_carry: bool = True):
    """Ripple-carry add; returns (sum bus, carry out or None).

    ``with_carry=False`` skips the final carry stage entirely -- building
    logic whose output is discarded would create untestable faults and
    phantom switching power."""
    s_bus = []
    carry = cin
    last = len(a) - 1
    for i in range(len(a)):
        x = b.xor_([a[i], bb[i]], tag=tag)
        s_bus.append(b.xor_([x, carry], tag=tag))
        if i == last and not with_carry:
            return s_bus, None
        g = b.and_([a[i], bb[i]], tag=tag)
        p = b.and_([x, carry], tag=tag)
        carry = b.or_([g, p], tag=tag)
    return s_bus, carry


def _subtract(b: NetlistBuilder, a, bb, tag, with_carry: bool = True):
    """a - b via a + ~b + 1; returns (difference bus, carry out)."""
    inv = [b.not_(bit, tag=tag) for bit in bb]
    one = b.const1(tag=tag)
    return _ripple_add(b, a, inv, one, tag, with_carry=with_carry)


def _multiply(b: NetlistBuilder, a, bb, tag):
    """Truncated array multiplier: low ``w`` bits of a*b.

    Row accumulation only touches the columns a row can affect, so no
    gate's output is ever discarded."""
    w = len(a)
    zero = b.const0(tag=tag)
    acc = [b.and_([a[i], bb[0]], tag=tag) for i in range(w)]
    for j in range(1, w):
        row = [b.and_([a[i], bb[j]], tag=tag) for i in range(w - j)]
        upper, _ = _ripple_add(b, acc[j:], row, zero, tag, with_carry=False)
        acc = acc[:j] + upper
    return acc


def _less_than(b: NetlistBuilder, a, bb, tag):
    """Unsigned a < b: borrow out of a - b."""
    _, carry = _subtract(b, a, bb, tag)
    return b.not_(carry, tag=tag)


def _fu_logic(b: NetlistBuilder, kind: OpKind, a, bb, tag):
    if kind is OpKind.ADD:
        zero = b.const0(tag=tag)
        s, _ = _ripple_add(b, a, bb, zero, tag, with_carry=False)
        return s
    if kind is OpKind.SUB:
        s, _ = _subtract(b, a, bb, tag, with_carry=False)
        return s
    if kind is OpKind.MUL:
        return _multiply(b, a, bb, tag)
    if kind is OpKind.LT:
        return [_less_than(b, a, bb, tag)]
    if kind is OpKind.AND:
        return [b.and_([a[i], bb[i]], tag=tag) for i in range(len(a))]
    if kind is OpKind.OR:
        return [b.or_([a[i], bb[i]], tag=tag) for i in range(len(a))]
    if kind is OpKind.XOR:
        return [b.xor_([a[i], bb[i]], tag=tag) for i in range(len(a))]
    raise ValueError(f"unsupported FU kind {kind}")


def _mux_tree(
    b: NetlistBuilder,
    mux: MuxSpec,
    source_buses: list[list[int]],
    sel_nets: list[int],
    tag: str,
) -> list[int]:
    """Binary MUX2 tree selecting among ``source_buses`` (LSB-first sel)."""
    if len(source_buses) == 1:
        return source_buses[0]
    width = len(source_buses[0])
    padded = list(source_buses)
    while len(padded) < (1 << len(sel_nets)):
        padded.append(source_buses[0])
    level = padded
    for sel in sel_nets:
        nxt = []
        for i in range(0, len(level), 2):
            nxt.append(
                [b.mux2_(sel, level[i][k], level[i + 1][k], tag=tag) for k in range(width)]
            )
        level = nxt
    assert len(level) == 1
    return level[0]


def elaborate_datapath(rtl: RTLDesign, gated_clocks: bool = True) -> DatapathNets:
    """Expand ``rtl`` into a gate-level datapath netlist.

    ``gated_clocks`` selects the register style.  True (default, the
    paper's low-power assumption) uses enable-gated flip-flops (``DFFE``)
    that burn clock energy only on loading cycles -- the reason extra-load
    SFR faults are guaranteed to increase power.  False builds the
    free-running alternative: a recirculating MUX2 in front of a plain
    ``DFF`` that clocks every cycle, the style the ablation bench uses to
    show the power test loses most of its load-fault signal without clock
    gating."""
    w = rtl.width
    b = NetlistBuilder(name=f"{rtl.name}_dp")

    control_nets = {line: b.input(line) for line in rtl.load_lines + rtl.sel_lines}
    input_buses = {name: b.input_bus(name, w) for name in rtl.dfg.inputs}
    const_buses = {
        name: b.const_bus(value, w, tag="dp:const")
        for name, value in rtl.dfg.constants.items()
    }
    reg_q = {r.name: b.bus(f"{r.name}_q", w) for r in rtl.registers}

    def source_bus(src: Source) -> list[int]:
        if src.kind == "input":
            return input_buses[src.ref]
        if src.kind == "const":
            return const_buses[src.ref]
        if src.kind == "reg":
            return reg_q[src.ref]
        if src.kind == "fu":
            return fu_out[src.ref]
        raise ValueError(src.kind)

    # Functional units (port muxes read registers/constants only, so they
    # can elaborate before the register input muxes that read FU outputs).
    fu_out: dict[str, list[int]] = {}
    cond_net: int | None = None
    for f in rtl.fus:
        tag = f"dp:{f.name}"
        a_bus = _mux_tree(b, f.mux_a, [source_bus(s) for s in f.mux_a.sources],
                          [control_nets[s] for s in f.mux_a.sel_names], tag)
        b_bus = _mux_tree(b, f.mux_b, [source_bus(s) for s in f.mux_b.sources],
                          [control_nets[s] for s in f.mux_b.sel_names], tag)
        out = _fu_logic(b, f.kind, a_bus, b_bus, tag)
        if len(out) < w:
            zero = b.const0(tag=tag)
            out = out + [zero] * (w - len(out))
        fu_out[f.name] = out
        if rtl.cond_fu == f.name:
            cond_net = out[0]
            b.output(cond_net)
            # Give the comparator bit a stable exported name.
            # (The net itself keeps its generated name; system.py binds it.)

    # Registers: input mux tree + flip-flop bank.
    for r in rtl.registers:
        tag = f"dp:{r.name}"
        d_bus = _mux_tree(b, r.input_mux, [source_bus(s) for s in r.input_mux.sources],
                          [control_nets[s] for s in r.input_mux.sel_names], tag)
        en = control_nets[r.load_line]
        for i in range(w):
            if gated_clocks:
                b.dffe(en, d_bus[i], output=reg_q[r.name][i],
                       name=f"{r.name}_ff{i}", tag=tag)
            else:
                hold = b.mux2_(en, reg_q[r.name][i], d_bus[i],
                               name=f"{r.name}_hold{i}", tag=tag)
                b.dff(hold, output=reg_q[r.name][i], name=f"{r.name}_ff{i}", tag=tag)

    output_buses = {}
    for port, reg_name in rtl.outputs.items():
        output_buses[port] = reg_q[reg_name]
        b.output_bus(reg_q[reg_name])

    netlist = b.done()
    return DatapathNets(
        netlist=netlist,
        control_nets=control_nets,
        input_buses=input_buses,
        output_buses=output_buses,
        reg_q=reg_q,
        cond_net=cond_net,
        fu_out=fu_out,
    )
