"""hls subpackage."""
