"""Integrated controller-datapath system assembly and normal-mode harness.

``build_system`` flattens the synthesized controller and the elaborated
datapath into one netlist wired exactly as Figure 1 of the paper: control
lines run from the controller into the datapath, the comparator status bit
runs back, and only ``reset``, ``start`` and the data inputs/outputs touch
the outside world.

``NormalModeStimulus`` drives a full computation per pattern: one reset
cycle, then ``start`` held high while the data inputs stay constant --
the paper's normal-mode operation on one test pattern.  ``hold_masks``
extracts, per cycle and pattern, whether the fault-free machine has
reached HOLD; system observability (and hence the SFR/SFI split) is
defined by sampling the data outputs at those times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import Gate, Netlist
from ..synth.controller import SynthesizedController, synthesize_controller
from ..synth.fsm import FSM
from .controlword import COND_INPUT, START_INPUT, build_fsm
from .gatelevel import DatapathNets, elaborate_datapath
from .rtl import HOLD_STATE, RTLDesign


@dataclass
class System:
    """One integrated controller-datapath pair."""

    netlist: Netlist
    rtl: RTLDesign
    fsm: FSM
    controller: SynthesizedController
    reset_net: int
    start_net: int
    input_buses: dict[str, list[int]]
    output_buses: dict[str, list[int]]
    control_nets: dict[str, int]
    state_nets: list[int]
    reg_q: dict[str, list[int]]
    cond_net: int | None
    #: standalone-controller net name -> system net id
    ctrl_net_map: dict[str, int] | None = None
    #: standalone-controller gate index -> system gate index
    ctrl_gate_map: dict[int, int] | None = None

    def to_system_fault(self, site):
        """Translate a fault site enumerated on the standalone controller
        netlist into the equivalent site in the flattened system."""
        from ..logic.faults import FaultSite

        assert self.ctrl_gate_map is not None and self.ctrl_net_map is not None
        gate = None if site.gate_index is None else self.ctrl_gate_map[site.gate_index]
        net = self.ctrl_net_map[self.controller.netlist.net_names[site.net]]
        return FaultSite(gate, site.pin, net, site.value)

    def controller_gates(self) -> list[Gate]:
        """The paper's fault universe: gates inside the controller."""
        return self.netlist.gates_with_tag("ctrl")

    def datapath_gates(self) -> list[Gate]:
        return self.netlist.gates_with_tag("dp")

    @property
    def n_steps(self) -> int:
        return self.rtl.schedule.n_steps

    def cycles_for(self, iterations: int, hold_cycles: int = 3) -> int:
        """Cycle budget: reset + RESET + ``iterations`` body passes + HOLD."""
        return 2 + self.n_steps * max(1, iterations) + hold_cycles

    def hold_code_planes(self, sim) -> np.ndarray:
        """Word-mask of patterns whose controller state is HOLD."""
        code = self.controller.encoding.codes[HOLD_STATE]
        mask = None
        for j, net in enumerate(self.state_nets):
            plane = sim.O[net] if (code >> j) & 1 else sim.Z[net]
            mask = plane.copy() if mask is None else mask & plane
        assert mask is not None
        return mask


def build_system(
    rtl: RTLDesign,
    encoding_kind: str = "binary",
    max_fanin: int = 4,
    output_style: str = "pla",
    gated_clocks: bool = True,
) -> System:
    """Synthesize the controller and flatten it with the datapath."""
    fsm = build_fsm(rtl)
    ctrl = synthesize_controller(
        fsm, encoding_kind=encoding_kind, max_fanin=max_fanin, output_style=output_style
    )
    dp: DatapathNets = elaborate_datapath(rtl, gated_clocks=gated_clocks)

    b = NetlistBuilder(name=rtl.name)
    reset = b.input("reset")
    start = b.input(START_INPUT)
    input_buses = {name: b.input_bus(name, rtl.width) for name in rtl.dfg.inputs}

    control_nets = {line: b.net(f"ctl_{line}") for line in rtl.load_lines + rtl.sel_lines}
    cond_bit = b.net("cond_bit") if rtl.cond_fu else None

    dp_bindings: dict[str, int] = {}
    for line, net in control_nets.items():
        dp_bindings[line] = net
    for name, bus in input_buses.items():
        for i, net in enumerate(bus):
            dp_bindings[f"{name}[{i}]"] = net
    if cond_bit is not None and dp.cond_net is not None:
        dp_bindings[dp.netlist.net_names[dp.cond_net]] = cond_bit
    dp_map = b.instantiate(dp.netlist, dp_bindings, prefix="dp")

    ctrl_bindings: dict[str, int] = {"reset": reset, START_INPUT: start}
    if cond_bit is not None:
        ctrl_bindings[COND_INPUT] = cond_bit
    for line, net in control_nets.items():
        ctrl_bindings[line] = net
    ctrl_map = b.instantiate(ctrl.netlist, ctrl_bindings, prefix="ctrl")

    output_buses = {}
    for port, reg_name in rtl.outputs.items():
        bus = [dp_map[f"{reg_name}_q[{i}]"] for i in range(rtl.width)]
        output_buses[port] = bus
        b.output_bus(bus)

    netlist = b.done()
    reg_q = {
        r.name: [dp_map[f"{r.name}_q[{i}]"] for i in range(rtl.width)]
        for r in rtl.registers
    }
    state_nets = [ctrl_map[f"state[{j}]"] for j in range(ctrl.encoding.n_bits)]
    ctrl_gate_map = {}
    by_name = {g.name: g.index for g in netlist.gates}
    for g in ctrl.netlist.gates:
        ctrl_gate_map[g.index] = by_name[f"ctrl/{g.name}"]
    return System(
        netlist=netlist,
        rtl=rtl,
        fsm=fsm,
        controller=ctrl,
        reset_net=reset,
        start_net=start,
        input_buses=input_buses,
        output_buses=output_buses,
        control_nets=control_nets,
        state_nets=state_nets,
        reg_q=reg_q,
        cond_net=cond_bit,
        ctrl_net_map=ctrl_map,
        ctrl_gate_map=ctrl_gate_map,
    )


class NormalModeStimulus:
    """Drive one full computation per pattern.

    Cycle 0 asserts ``reset`` (start already high); from cycle 1 onward the
    machine runs free.  Data inputs are held constant for the whole run,
    exactly as a tester applies one pattern per computation.

    The per-net (zero, one) bit-planes are packed once at construction and
    replayed by every ``apply`` -- a fault-simulation or Monte-Carlo
    campaign reuses one stimulus across hundreds of faulted simulators
    without re-packing identical data each run.
    """

    def __init__(self, system: System, data: dict[str, np.ndarray], n_cycles: int):
        from ..logic import values as V

        lengths = {len(np.asarray(v)) for v in data.values()}
        if len(lengths) != 1:
            raise ValueError("all data arrays must have the same length")
        missing = set(system.rtl.dfg.inputs) - set(data)
        if missing:
            raise ValueError(f"missing data for inputs {sorted(missing)}")
        self.system = system
        self.data = {k: np.asarray(v, dtype=np.int64) for k, v in data.items()}
        self.n_patterns = lengths.pop()
        self.n_cycles = n_cycles

        # Precompile the packed bit-planes driven at cycle 0.
        mask = V.tail_mask(self.n_patterns)
        zeros = np.zeros_like(mask)
        planes: list[tuple[int, np.ndarray, np.ndarray]] = [
            (system.reset_net, zeros, mask),  # reset = 1
            (system.start_net, zeros, mask),  # start = 1
        ]
        width = system.rtl.width
        for name, bus in system.input_buses.items():
            vals = self.data[name]
            if vals.size and (vals.min() < 0 or vals.max() >> width):
                raise ValueError(
                    f"data for input {name!r} exceeds the {width}-bit datapath"
                )
            for i, net in enumerate(bus):
                one = V.pack_bits((vals >> i) & 1)
                planes.append((net, ~one & mask, one))
        self._cycle0_planes = planes
        self._reset_off = (system.reset_net, mask, zeros)  # reset = 0

    def apply(self, sim, cycle: int) -> None:
        if cycle == 0:
            if sim.n_patterns != self.n_patterns:
                raise ValueError(
                    f"simulator carries {sim.n_patterns} patterns; "
                    f"stimulus was packed for {self.n_patterns}"
                )
            for net, z, o in self._cycle0_planes:
                sim.drive_words(net, z, o)
        elif cycle == 1:
            net, z, o = self._reset_off
            sim.drive_words(net, z, o)


def hold_masks(system: System, stimulus: NormalModeStimulus) -> list[np.ndarray]:
    """Per-cycle word-masks of patterns whose *fault-free* machine is in
    HOLD -- the output sampling schedule for fault detection."""
    from ..logic.simulator import CycleSimulator

    sim = CycleSimulator(system.netlist, stimulus.n_patterns)
    masks = []
    for cycle in range(stimulus.n_cycles):
        stimulus.apply(sim, cycle)
        sim.settle()
        masks.append(system.hold_code_planes(sim))
        sim.latch()
    return masks
