"""Linear feedback shift registers for pseudorandom test pattern generation.

The paper drives the datapath data inputs from a TPGR (test pattern
generation register) and builds three 1200-pattern test sets from different
seeds, one of them "almost all 0s" to be deliberately less pseudorandom
(Section 6, Table 3).  This module provides Fibonacci LFSRs over standard
primitive polynomials so those experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial taps (XOR positions, 1-based from the output stage)
#: for common register lengths; taken from the standard tables.
PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    20: (20, 17),
    23: (23, 18),
    24: (24, 23, 22, 17),
    31: (31, 28),
    32: (32, 31, 30, 10),
}


class LFSR:
    """Fibonacci LFSR with external XOR feedback.

    Args:
        length: register length in bits.
        seed: nonzero initial state (bit 0 = stage closest to the output).
        taps: feedback taps; defaults to a primitive polynomial.
    """

    def __init__(self, length: int, seed: int = 1, taps: tuple[int, ...] | None = None):
        if length < 2:
            raise ValueError("LFSR length must be >= 2")
        if taps is None:
            if length not in PRIMITIVE_TAPS:
                raise ValueError(f"no default primitive polynomial for length {length}")
            taps = PRIMITIVE_TAPS[length]
        if any(t < 1 or t > length for t in taps):
            raise ValueError("tap positions must be in 1..length")
        self.length = length
        self.taps = tuple(sorted(set(taps), reverse=True))
        self.state = seed & ((1 << length) - 1)
        if self.state == 0:
            raise ValueError("LFSR seed must be nonzero")

    def step(self) -> int:
        """Advance one bit; return the bit shifted out (the new LSB)."""
        fb = 0
        for t in self.taps:
            fb ^= (self.state >> (t - 1)) & 1
        self.state = ((self.state << 1) | fb) & ((1 << self.length) - 1)
        return fb

    def next_word(self, bits: int) -> int:
        """Shift out ``bits`` bits and assemble them LSB-first."""
        word = 0
        for i in range(bits):
            word |= self.step() << i
        return word

    def words(self, count: int, bits: int) -> np.ndarray:
        """Return ``count`` consecutive ``bits``-wide words as int64."""
        return np.array([self.next_word(bits) for _ in range(count)], dtype=np.int64)

    def period_check(self, limit: int | None = None) -> int:
        """Count steps until the state repeats (exhaustive; tests only)."""
        start = self.state
        limit = limit if limit is not None else (1 << self.length)
        for n in range(1, limit + 1):
            self.step()
            if self.state == start:
                return n
        return -1
