"""tpg subpackage."""
