"""Full reproduction of the paper's Diffeq artefacts (Tables 1, 3; Fig 7a).

Runs the differential equation solver through the complete flow and prints:

* the Table-2 row (controller fault breakdown);
* Table 1 -- representative SFR faults spanning the power-effect range;
* Figure 7(a) -- ASCII scatter of per-fault Monte-Carlo power vs the
  +/-5 % detection band;
* Table 3 -- power consistency across three fixed 1200-pattern test sets
  (the third seeded almost-all-zeros, as in the paper).

Run:  python examples/diffeq_power_study.py          (~2-3 minutes)
      REPRO_QUICK=1 python examples/diffeq_power_study.py   (smaller runs)
"""

import os

from repro import build_rtl, build_system, grade_sfr_faults, run_pipeline
from repro.core.grading import pick_representative, table3_rows
from repro.core.pipeline import PipelineConfig
from repro.core.report import render_figure7, render_table1, render_table3
from repro.power.estimator import PowerEstimator

QUICK = bool(os.environ.get("REPRO_QUICK"))


def main() -> None:
    system = build_system(build_rtl("diffeq"))
    result = run_pipeline(
        system, PipelineConfig(n_patterns=128 if QUICK else 512)
    )
    print("fault buckets:", result.counts())

    grading = grade_sfr_faults(
        system,
        result,
        threshold=0.05,
        batch_patterns=96 if QUICK else 192,
        max_batches=4 if QUICK else 12,
    )
    picks = pick_representative(grading, count=5)
    print()
    print(render_table1(grading, picks))
    print()
    print(render_figure7(grading))

    estimator = PowerEstimator(system.netlist)
    rows = table3_rows(
        system,
        estimator,
        grading,
        picks,
        seeds=(0xACE1, 0xBEEF, 0x1),
        n_patterns=300 if QUICK else 1200,
    )
    print()
    print(render_table3(rows, "diffeq"))
    print(
        "\nNote how the percentage change is consistent across test sets "
        "even when the absolute power is not -- the paper's Table 3 claim."
    )


if __name__ == "__main__":
    main()
