"""Quickstart: classify controller faults and grade them by power.

Builds the paper's differential-equation-solver benchmark (4-bit datapath,
10-state controller), runs the Section-5 classification pipeline, grades
the system-functionally redundant (SFR) faults by Monte-Carlo power, and
prints which of these logically *undetectable* faults the 5% power test
catches.

Run:  python examples/quickstart.py
"""

from repro import build_rtl, build_system, grade_sfr_faults, run_pipeline
from repro.core.pipeline import PipelineConfig

def main() -> None:
    # 1. High-level synthesis: DFG -> schedule -> binding -> RTL.
    rtl = build_rtl("diffeq")
    print(rtl.summary())

    # 2. Controller synthesis + gate-level elaboration + flattening.
    system = build_system(rtl)
    print(f"system: {len(system.netlist.gates)} gates "
          f"({len(system.controller_gates())} in the controller)")

    # 3. The Section-5 pipeline: fault simulate, screen, classify.
    result = run_pipeline(system, PipelineConfig(n_patterns=256))
    print("\nfault classification:", result.counts())
    row = result.table2_row()
    print(f"SFR share: {row['sfr_faults']}/{row['total_faults']} "
          f"= {row['pct_sfr']:.1f}% of controller faults are "
          f"undetectable by any logic test of the integrated pair")

    # 4. Power grading: can a +/-5% power measurement catch them?
    grading = grade_sfr_faults(system, result, threshold=0.05)
    s = grading.summary()
    print(f"\nfault-free datapath power: {grading.fault_free_uw:.1f} uW")
    print(f"power test at +/-5% catches "
          f"{s['select_detected']}/{s['n_select_only']} select-line and "
          f"{s['load_detected']}/{s['n_load']} load-line SFR faults")

    print("\nworst offender:")
    worst = max(grading.graded, key=lambda g: g.pct_change)
    print(f"  {worst.record.site.describe(system.controller.netlist)}")
    for line in worst.effect_summary():
        print(f"    {line}")
    print(f"  power {worst.power_uw:.1f} uW ({worst.pct_change:+.2f}%)")


if __name__ == "__main__":
    main()
