"""Run the full flow on your own behaviour: a 2-tap FIR filter stage.

Demonstrates the public API end to end for a design that is not one of
the paper's benchmarks:

1. capture a data-flow graph (``y = c0*x0 + c1*x1 + bias``);
2. schedule it under FU constraints and bind registers/muxes;
3. synthesize the controller and elaborate the gate-level system;
4. export the netlist to structural Verilog and ISCAS-style .bench;
5. classify the controller's stuck-at faults and grade the SFR ones.

Run:  python examples/custom_design.py
"""

from repro import build_system, grade_sfr_faults, run_pipeline
from repro.core.pipeline import PipelineConfig
from repro.hls.bind import bind_design
from repro.hls.dfg import DFG, OpKind
from repro.hls.schedule import list_schedule
from repro.netlist.bench import write_bench
from repro.netlist.stats import analyze
from repro.netlist.verilog import write_verilog


def fir_dfg(width: int = 4) -> DFG:
    """y = c0*x0 + c1*x1 + bias, all 4-bit."""
    d = DFG(name="fir2", width=width, inputs=["x0", "x1", "c0", "c1", "bias"])
    d.op("p0", OpKind.MUL, "c0", "x0")
    d.op("p1", OpKind.MUL, "c1", "x1")
    d.op("s0", OpKind.ADD, "p0", "p1")
    d.op("y", OpKind.ADD, "s0", "bias")
    d.outputs = {"y_out": "y"}
    d.validate()
    return d


def main() -> None:
    dfg = fir_dfg()
    schedule = list_schedule(dfg, resources={OpKind.MUL: 1, OpKind.ADD: 1})
    rtl = bind_design(dfg, schedule)
    print(rtl.summary())
    print("schedule:", dict(sorted(schedule.steps.items(), key=lambda kv: kv[1])))

    system = build_system(rtl)
    print(analyze(system.netlist))

    with open("fir2.v", "w") as f:
        f.write(write_verilog(system.netlist))
    with open("fir2.bench", "w") as f:
        f.write(write_bench(system.netlist))
    print("wrote fir2.v and fir2.bench")

    result = run_pipeline(system, PipelineConfig(n_patterns=256))
    print("\nfault buckets:", result.counts())
    grading = grade_sfr_faults(system, result, max_batches=4)
    print(f"fault-free datapath power: {grading.fault_free_uw:.1f} uW")
    for g in grading.graded:
        flag = "  <-- beyond 5% band" if abs(g.pct_change) > 5 else ""
        print(f"  {g.power_uw:8.1f} uW ({g.pct_change:+6.2f}%) "
              f"{'; '.join(g.effect_summary()[:2])}{flag}")


if __name__ == "__main__":
    main()
