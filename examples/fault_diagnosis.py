"""Beyond detection: locating an SFR fault from its power signature.

The paper detects SFR faults by comparing total power against a threshold
band.  With per-domain power visibility (its Section-5 remark about the
power management schemes of large microchips), each fault also has a
*signature*: the vector of per-component power deviations.  This example
builds a signature dictionary over every SFR fault of the Facet design,
then plays tester: a device carrying an undisclosed fault is measured and
diagnosed by nearest-signature match.

Run:  python examples/fault_diagnosis.py
"""

from repro import build_rtl, build_system, run_pipeline
from repro.core.diagnosis import build_dictionary
from repro.core.pipeline import PipelineConfig


def main() -> None:
    system = build_system(build_rtl("facet"))
    result = run_pipeline(system, PipelineConfig(n_patterns=256))
    print(f"building signature dictionary over {len(result.sfr_records)} SFR faults...")
    dictionary = build_dictionary(system, result, batch_patterns=128, max_batches=3)

    # Pick a "device under test" with a secret fault.
    secret = result.sfr_records[-1]
    print(f"\ndevice under test carries: "
          f"{secret.site.describe(system.controller.netlist)}")
    print("  effects:", "; ".join(secret.classification.effect_summary()))

    observed = dictionary.signature_of_machine(secret.system_site)
    print(f"  measured: total {observed.total_pct:+.2f}%; hottest components:")
    hot = sorted(observed.component_pct.items(), key=lambda kv: -abs(kv[1]))[:3]
    for tag, pct in hot:
        print(f"    {tag:12} {pct:+.3f}% of baseline power")

    print("\ndiagnosis (nearest signatures):")
    for rank, (site, distance) in enumerate(dictionary.diagnose(observed, top=5), 1):
        mark = "  <-- actual fault" if site == secret.system_site else ""
        name = next(
            r.site.describe(system.controller.netlist)
            for r in result.sfr_records
            if r.system_site == site
        )
        print(f"  {rank}. d={distance:7.4f}  {name}{mark}")


if __name__ == "__main__":
    main()
