"""Section 4's "worst case": maximal non-disruptive controller corruption.

The paper notes that piling up every control line effect that does *not*
disrupt the computation drives power up by over 200% -- the ceiling for
what multiple SFR faults could do to a low-power design.  This script
reproduces that: it greedily corrupts the Diffeq control table (extra
loads, don't-care select inversions), proves each corruption harmless with
the symbolic replay oracle, synthesizes the corrupted controller, verifies
the system still computes correct results, and compares Monte-Carlo power.

Run:  python examples/worst_case.py
"""

import numpy as np

from repro import build_rtl, build_system, monte_carlo_power
from repro.core.worstcase import find_worst_case
from repro.designs.catalog import DFG_BUILDERS
from repro.hls.system import NormalModeStimulus
from repro.logic.simulator import CycleSimulator
from repro.power.estimator import PowerEstimator


def verify_functional(system, n_patterns: int = 64) -> int:
    """Count output mismatches against the reference semantics."""
    dfg = DFG_BUILDERS["diffeq"]()
    rng = np.random.default_rng(7)
    data = {k: rng.integers(0, 16, n_patterns) for k in system.rtl.dfg.inputs}
    stim = NormalModeStimulus(system, data, system.cycles_for(5))
    sim = CycleSimulator(system.netlist, n_patterns)
    for c in range(stim.n_cycles):
        stim.apply(sim, c)
        sim.settle()
        sim.latch()
    got = sim.sample_bus(system.output_buses["y_out"])
    bad = 0
    for p in range(n_patterns):
        outs, iters = dfg.execute(
            {k: int(v[p]) for k, v in data.items()}, max_iterations=5
        )
        if iters < 5 and got[p] != outs["y_out"]:
            bad += 1
    return bad


def main() -> None:
    rtl = build_rtl("diffeq")
    golden = build_system(rtl)

    wc = find_worst_case(rtl, golden.controller)
    print(f"accepted {len(wc.flips)} of {wc.candidates} candidate corruptions:")
    for flip in wc.flips[:10]:
        print(f"  {flip.describe()}")
    print(f"  ... and {max(0, len(wc.flips) - 10)} more")

    corrupted = wc.build()
    assert verify_functional(corrupted) == 0, "corruption must stay functional"
    print("corrupted system verified functionally identical")

    base = monte_carlo_power(golden, PowerEstimator(golden.netlist))
    worst = monte_carlo_power(corrupted, PowerEstimator(corrupted.netlist))
    pct = 100.0 * (worst.power_uw - base.power_uw) / base.power_uw
    print(f"\nfault-free power : {base.power_uw:9.1f} uW")
    print(f"worst-case power : {worst.power_uw:9.1f} uW  ({pct:+.1f}%)")
    print("paper's observation: 'the power increased by over 200%'")


if __name__ == "__main__":
    main()
